"""The ``accel`` storage backend: specialized kernels + numpy audit scans.

Where the speed comes from
--------------------------

Profiling the pure DMU shows the per-instruction cost is almost entirely
CPython interpreter overhead *around* tiny data: every hot scan touches at
most ``elements_per_list_entry`` (8) slots or ``associativity`` (8) ways, so
there is no bulk work for numpy to amortize its per-call cost against —
numpy scalar indexing is 4-6x slower than list indexing.  What *can* be
removed is the interpreter overhead itself:

* **Specialized closure kernels.**  :meth:`AccelBackend.install` rebinds the
  five ISA instructions (``create_task``, ``add_dependence``,
  ``complete_creation``, ``finish_task``, ``get_ready_task``) to closures
  that bind every column, free list and pooled result object as a cell
  variable (no ``self._...`` attribute chains on the hot path) and inline
  the single-entry-chain fast paths of the list arrays (the overwhelmingly
  common shape) that the pure path reaches through method calls.

* **Batched counter commits.**  The pure path updates ~10 statistics
  counters (two ``Counter`` mappings plus scalars) per instruction.  The
  kernels accumulate all of them into one flat pending list and commit on
  demand: the DMU's ``stats`` property calls the installed flush before any
  external read, so observed totals are always byte-identical to pure.

* **Vectorized audits.**  The whole-structure recount scans
  (:meth:`audit_list_array`, :meth:`audit_alias_table`) sweep every slot of
  a slab — thousands of elements, genuinely bulk — and are implemented with
  numpy here.

Identity contract
-----------------

Every kernel replicates its pure counterpart *exactly*: same charged access
counts, same structure-access attribution, same blocked-structure order,
same exception types and messages, same allocation/recycling order (fresh
counters + LIFO stacks), same pooled result objects.  The differential tests
in ``tests/test_columnar_differential.py`` drive randomized op streams
through both backends and require identical results, stats, occupancy
counters and recycle order; the digest tests require the 11 experiment CSVs
and the pinned runtime cycles to be byte-identical.
"""

from __future__ import annotations

from typing import Dict

from ...errors import DMUProtocolError, UnknownTaskError
from .base import INVALID_ELEMENT, StorageBackend

# Pending-counter cells: one flat list shared by all five kernels of a DMU.
# Structure accesses...
_P_TAT = 0
_P_DAT = 1
_P_TT = 2
_P_DT = 3
_P_SLA = 4
_P_DLA = 5
_P_RLA = 6
_P_RQ = 7
# ...instruction counts...
_P_I_CREATE = 8
_P_I_ADD = 9
_P_I_COMPLETE = 10
_P_I_FINISH = 11
_P_I_READY = 12
# ...DMUStats scalars...
_P_CYCLES = 13
_P_CREATED = 14
_P_FINISHED = 15
_P_DEPS = 16
_P_READY_POPS = 17
_P_NULL_POPS = 18
# ...alias-table bookkeeping.
_P_TAT_LOOKUPS = 19
_P_DAT_LOOKUPS = 20
_P_OCC_SAMPLES = 21
_P_OCC_TOTAL = 22
_P_CELLS = 23


class AccelBackend(StorageBackend):
    """Specialized instruction kernels, batched counters, numpy audits."""

    name = "accel"

    def __init__(self) -> None:
        import numpy

        self._np = numpy

    # ------------------------------------------------------------------ audits
    def audit_list_array(self, list_array) -> Dict[str, int]:
        np = self._np
        in_use = np.fromiter(list_array._in_use, np.int64, len(list_array._in_use))
        elements = np.fromiter(list_array._elements, np.int64, len(list_array._elements))
        valid = np.fromiter(list_array._valid, np.int64, len(list_array._valid))
        entries_in_use = int(np.count_nonzero(in_use))
        return {
            "entries_in_use": entries_in_use,
            "free_entries": list_array.num_entries - entries_in_use,
            "live_elements": int(np.count_nonzero(elements != INVALID_ELEMENT)),
            "valid_total": int(valid.sum()),
        }

    def audit_alias_table(self, alias_table) -> Dict[str, int]:
        np = self._np
        counts = np.fromiter(alias_table._set_count, np.int64, len(alias_table._set_count))
        return {
            "occupied_sets": int(np.count_nonzero(counts)),
            "entries_in_use": int(counts.sum()),
            "directory_entries": len(alias_table._by_address),
        }

    # ------------------------------------------------------------------ dispatch
    def install(self, dmu) -> None:  # noqa: C901 - one closure factory per ISA instruction
        """Rebind the five ISA instructions on ``dmu`` to specialized kernels."""
        # Structure names (imported lazily: this module is only imported at
        # resolve time, well after repro.core.dmu finished loading).
        from ..dmu import DAT, DEP_TABLE, DLA, READY_QUEUE, RLA, SLA, TASK_TABLE, TAT

        pend = [0] * _P_CELLS
        stats = dmu._stats

        tat = dmu.tat
        dat = dmu.dat
        tat_by = tat._by_address
        dat_by = dat._by_address
        tat_can_allocate = tat.can_allocate
        tat_allocate = tat.allocate
        tat_release = tat.release
        dat_can_allocate = dat.can_allocate
        dat_allocate = dat.allocate
        dat_release = dat.release

        task_table = dmu.task_table
        tt_descriptor = task_table.descriptor_address
        tt_pred = task_table.predecessor_count
        tt_succ = task_table.successor_count
        tt_succ_list = task_table.successor_list
        tt_dep_list = task_table.dependence_list
        tt_complete = task_table.creation_complete
        tt_valid = task_table.valid
        tt_install = task_table.install

        dependence_table = dmu.dependence_table
        dt_last_writer = dependence_table.last_writer
        dt_lw_valid = dependence_table.last_writer_valid
        dt_reader_list = dependence_table.reader_list
        dt_valid = dependence_table.valid
        dt_address = dependence_table.address
        dt_size = dependence_table.size
        dt_grow_to = dependence_table._grow_to

        per = dmu._per_entry
        access_cycles = dmu._access_cycles

        sla = dmu.successor_lists
        sla_elements = sla._elements
        sla_next = sla._next
        sla_in_use = sla._in_use
        sla_valid = sla._valid
        sla_list_valid = sla._list_valid
        sla_list_entries = sla._list_entries
        sla_tail = sla._tail
        sla_recycled = sla._recycled
        sla_blank = sla._blank_row
        sla_num_entries = sla.num_entries
        sla_allocate_entry = sla._allocate_entry
        sla_append = sla.append
        sla_iterate = sla.iterate
        sla_free_list = sla.free_list

        dla = dmu.dependence_lists
        dla_elements = dla._elements
        dla_next = dla._next
        dla_in_use = dla._in_use
        dla_valid = dla._valid
        dla_list_valid = dla._list_valid
        dla_list_entries = dla._list_entries
        dla_tail = dla._tail
        dla_recycled = dla._recycled
        dla_blank = dla._blank_row
        dla_num_entries = dla.num_entries
        dla_allocate_entry = dla._allocate_entry
        dla_append = dla.append
        dla_iterate = dla.iterate
        dla_free_list = dla.free_list

        rla = dmu.reader_lists
        rla_valid = rla._valid
        rla_list_valid = rla._list_valid
        rla_tail = rla._tail
        rla_new_list_head = rla.new_list_head
        rla_append = rla.append
        rla_iterate = rla.iterate
        rla_remove = rla.remove
        rla_flush = rla.flush
        rla_free_list = rla.free_list

        ready_queue = dmu.ready_queue
        rq_queue = ready_queue._queue
        rq_popleft = rq_queue.popleft
        ready_push = dmu._ready_push

        blocked = dmu._blocked
        create_result = dmu._create_result
        add_result = dmu._add_result
        complete_result = dmu._complete_result
        finish_result = dmu._finish_result
        ready_result = dmu._ready_result
        null_ready_result = dmu._null_ready_result
        create_cycles = create_result.cycles
        no_readers = ()

        # ---------------------------------------------------------- flush
        def flush() -> None:
            """Commit every pending counter into the shared DMUStats.

            Zero-valued cells are skipped so the Counter mappings never gain
            keys the pure path would not have created.
            """
            structure_accesses = stats.structure_accesses
            instructions = stats.instructions
            value = pend[_P_TAT]
            if value:
                structure_accesses[TAT] += value
                pend[_P_TAT] = 0
            value = pend[_P_DAT]
            if value:
                structure_accesses[DAT] += value
                pend[_P_DAT] = 0
            value = pend[_P_TT]
            if value:
                structure_accesses[TASK_TABLE] += value
                pend[_P_TT] = 0
            value = pend[_P_DT]
            if value:
                structure_accesses[DEP_TABLE] += value
                pend[_P_DT] = 0
            value = pend[_P_SLA]
            if value:
                structure_accesses[SLA] += value
                pend[_P_SLA] = 0
            value = pend[_P_DLA]
            if value:
                structure_accesses[DLA] += value
                pend[_P_DLA] = 0
            value = pend[_P_RLA]
            if value:
                structure_accesses[RLA] += value
                pend[_P_RLA] = 0
            value = pend[_P_RQ]
            if value:
                structure_accesses[READY_QUEUE] += value
                pend[_P_RQ] = 0
            value = pend[_P_I_CREATE]
            if value:
                instructions["create_task"] += value
                pend[_P_I_CREATE] = 0
            value = pend[_P_I_ADD]
            if value:
                instructions["add_dependence"] += value
                pend[_P_I_ADD] = 0
            value = pend[_P_I_COMPLETE]
            if value:
                instructions["complete_creation"] += value
                pend[_P_I_COMPLETE] = 0
            value = pend[_P_I_FINISH]
            if value:
                instructions["finish_task"] += value
                pend[_P_I_FINISH] = 0
            value = pend[_P_I_READY]
            if value:
                instructions["get_ready_task"] += value
                pend[_P_I_READY] = 0
            value = pend[_P_CYCLES]
            if value:
                stats.total_cycles += value
                pend[_P_CYCLES] = 0
            value = pend[_P_CREATED]
            if value:
                stats.tasks_created += value
                pend[_P_CREATED] = 0
            value = pend[_P_FINISHED]
            if value:
                stats.tasks_finished += value
                pend[_P_FINISHED] = 0
            value = pend[_P_DEPS]
            if value:
                stats.dependences_added += value
                pend[_P_DEPS] = 0
            value = pend[_P_READY_POPS]
            if value:
                stats.ready_pops += value
                pend[_P_READY_POPS] = 0
            value = pend[_P_NULL_POPS]
            if value:
                stats.null_ready_pops += value
                pend[_P_NULL_POPS] = 0
            value = pend[_P_TAT_LOOKUPS]
            if value:
                tat.lookups += value
                pend[_P_TAT_LOOKUPS] = 0
            value = pend[_P_DAT_LOOKUPS]
            if value:
                dat.lookups += value
                pend[_P_DAT_LOOKUPS] = 0
            value = pend[_P_OCC_SAMPLES]
            if value:
                dat._occupied_set_samples += value
                pend[_P_OCC_SAMPLES] = 0
            value = pend[_P_OCC_TOTAL]
            if value:
                dat._occupied_set_total += value
                pend[_P_OCC_TOTAL] = 0

        # ---------------------------------------------------------- create_task
        def create_task(descriptor_address):
            if descriptor_address in tat_by:
                raise DMUProtocolError(
                    f"task descriptor {descriptor_address:#x} created twice"
                )
            if not tat_can_allocate(descriptor_address):
                return blocked(TAT)
            if sla.free_entries < 1:
                return blocked(SLA)
            if dla.free_entries < 1:
                return blocked(DLA)

            task_id = tat_allocate(descriptor_address)
            # Inlined sla.new_list_head() (recycled-entry fast path; the
            # pre-check above guarantees a free entry exists).
            if sla_recycled:
                successor_list = sla_recycled.pop()
                sla_in_use[successor_list] = 1
                free = sla.free_entries - 1
                sla.free_entries = free
                in_use_count = sla_num_entries - free
                if in_use_count > sla.peak_entries_used:
                    sla.peak_entries_used = in_use_count
            else:
                successor_list = sla_allocate_entry()
            sla_list_valid[successor_list] = 0
            sla_list_entries[successor_list] = 1
            sla_tail[successor_list] = successor_list
            # Inlined dla.new_list_head().
            if dla_recycled:
                dependence_list = dla_recycled.pop()
                dla_in_use[dependence_list] = 1
                free = dla.free_entries - 1
                dla.free_entries = free
                in_use_count = dla_num_entries - free
                if in_use_count > dla.peak_entries_used:
                    dla.peak_entries_used = in_use_count
            else:
                dependence_list = dla_allocate_entry()
            dla_list_valid[dependence_list] = 0
            dla_list_entries[dependence_list] = 1
            dla_tail[dependence_list] = dependence_list
            # Inlined task_table.install() (in-range fast path; TAT IDs are
            # dense in [0, num_entries) by construction).
            if task_id >= task_table._size:
                tt_install(task_id, descriptor_address, successor_list, dependence_list)
            else:
                if tt_valid[task_id]:
                    raise DMUProtocolError(f"Task Table entry {task_id} is already in use")
                tt_descriptor[task_id] = descriptor_address
                tt_pred[task_id] = 0
                tt_succ[task_id] = 0
                tt_succ_list[task_id] = successor_list
                tt_dep_list[task_id] = dependence_list
                tt_complete[task_id] = 0
                tt_valid[task_id] = 1
                occupancy = task_table._occupancy + 1
                task_table._occupancy = occupancy
                if occupancy > task_table.peak_occupancy:
                    task_table.peak_occupancy = occupancy

            pend[_P_TAT] += 2
            pend[_P_SLA] += 1
            pend[_P_DLA] += 1
            pend[_P_TT] += 1
            pend[_P_I_CREATE] += 1
            pend[_P_CYCLES] += create_cycles
            pend[_P_CREATED] += 1
            create_result.task_id = task_id
            return create_result

        # ---------------------------------------------------------- add_dependence
        def add_dependence(descriptor_address, dependence_address, size, direction):
            if direction == "out":
                is_out = True
            elif direction == "in":
                is_out = False
            else:
                raise DMUProtocolError(f"invalid dependence direction: {direction!r}")
            pend[_P_TAT_LOOKUPS] += 1
            task_id = tat_by.get(descriptor_address)
            if task_id is None:
                raise UnknownTaskError(
                    f"task descriptor {descriptor_address:#x} is not tracked by the DMU"
                )
            pend[_P_DAT_LOOKUPS] += 1
            dep_id = dat_by.get(dependence_address)
            dep_is_new = dep_id is None
            readers = no_readers
            if dep_is_new:
                reader_list = -1
                writer_id = -1
                # Capacity pre-checks (uncharged; Blocked order is pinned:
                # DAT, DLA, SLA, RLA).
                if not dat_can_allocate(dependence_address, size):
                    return blocked(DAT)
            else:
                reader_list = dt_reader_list[dep_id]
                writer_id = dt_last_writer[dep_id] if dt_lw_valid[dep_id] else -1
                if is_out and reader_list >= 0:
                    readers, _ = rla_iterate(reader_list)

            task_dependence_list = tt_dep_list[task_id]
            if dla_valid[dla_tail[task_dependence_list]] == per and dla.free_entries < 1:
                return blocked(DLA)

            needed_sla = 0
            if writer_id >= 0 and writer_id != task_id:
                if sla_valid[sla_tail[tt_succ_list[writer_id]]] == per:
                    needed_sla += 1
            if is_out:
                for reader_id in readers:
                    if reader_id == task_id:
                        continue
                    if sla_valid[sla_tail[tt_succ_list[reader_id]]] == per:
                        needed_sla += 1
            if needed_sla and sla.free_entries < needed_sla:
                return blocked(SLA)

            if not is_out:
                if reader_list < 0:
                    needed_rla = 1
                else:
                    needed_rla = 1 if rla_valid[rla_tail[reader_list]] == per else 0
                if needed_rla and rla.free_entries < 1:
                    return blocked(RLA)

            # Mutation phase (charged accesses identical to pure).
            accesses = 3  # TAT lookup + Task Table read + DAT lookup
            pend[_P_TAT] += 1
            pend[_P_TT] += 1
            if dep_is_new:
                dep_id = dat_allocate(dependence_address, size)
                # Inlined dependence_table.install() (DAT IDs are dense in
                # range by construction).
                if dep_id >= dependence_table._size:
                    dt_grow_to(dep_id + 1)
                elif dt_valid[dep_id]:
                    raise DMUProtocolError(
                        f"Dependence Table entry {dep_id} is already in use"
                    )
                dt_last_writer[dep_id] = -1
                dt_lw_valid[dep_id] = 0
                dt_reader_list[dep_id] = -1
                dt_valid[dep_id] = 1
                dt_address[dep_id] = dependence_address
                dt_size[dep_id] = size
                occupancy = dependence_table._occupancy + 1
                dependence_table._occupancy = occupancy
                if occupancy > dependence_table.peak_occupancy:
                    dependence_table.peak_occupancy = occupancy
                accesses += 2  # DAT directory write + Dependence Table install
                pend[_P_DAT] += 2
                pend[_P_DT] += 1
            else:
                accesses += 1  # Dependence Table read
                pend[_P_DAT] += 1
                pend[_P_DT] += 1

            predecessors_added = 0

            # "Insert depID in dependence list of taskID" — inlined
            # append-only append (tail-not-full fast path).  The marker
            # comparison keeps the fast path from storing the invalid-element
            # value; the general append raises exactly as pure does.
            tail = dla_tail[task_dependence_list]
            tail_valid = dla_valid[tail]
            if tail_valid < per and dep_id != INVALID_ELEMENT:
                dla_elements[tail * per + tail_valid] = dep_id
                dla_valid[tail] = tail_valid + 1
                dla_list_valid[task_dependence_list] += 1
                dla_accesses = dla_list_entries[task_dependence_list]
            else:
                dla_accesses = dla_append(task_dependence_list, dep_id)
            accesses += dla_accesses
            pend[_P_DLA] += dla_accesses

            # RAW / WAW / WAR-with-writer edge.
            if writer_id >= 0 and writer_id != task_id:
                head = tt_succ_list[writer_id]
                tail = sla_tail[head]
                tail_valid = sla_valid[tail]
                if tail_valid < per and task_id != INVALID_ELEMENT:
                    sla_elements[tail * per + tail_valid] = task_id
                    sla_valid[tail] = tail_valid + 1
                    sla_list_valid[head] += 1
                    sla_accesses = sla_list_entries[head]
                else:
                    sla_accesses = sla_append(head, task_id)
                accesses += sla_accesses + 2
                pend[_P_SLA] += sla_accesses
                pend[_P_TT] += 2
                tt_succ[writer_id] += 1
                tt_pred[task_id] += 1
                predecessors_added = 1

            if not is_out:
                # "Insert taskID in reader list of depID"
                if reader_list < 0:
                    reader_list = rla_new_list_head()
                    dt_reader_list[dep_id] = reader_list
                    accesses += 1
                    pend[_P_RLA] += 1
                rla_accesses = rla_append(reader_list, task_id)
                accesses += rla_accesses
                pend[_P_RLA] += rla_accesses
            else:
                # WAR edges: every current reader gains this task as a successor.
                war_sla_accesses = 0
                war_edges = 0
                for reader_id in readers:
                    if reader_id == task_id:
                        continue
                    head = tt_succ_list[reader_id]
                    tail = sla_tail[head]
                    tail_valid = sla_valid[tail]
                    if tail_valid < per and task_id != INVALID_ELEMENT:
                        sla_elements[tail * per + tail_valid] = task_id
                        sla_valid[tail] = tail_valid + 1
                        sla_list_valid[head] += 1
                        war_sla_accesses += sla_list_entries[head]
                    else:
                        war_sla_accesses += sla_append(head, task_id)
                    tt_succ[reader_id] += 1
                    war_edges += 1
                if war_edges:
                    accesses += war_sla_accesses + 2 * war_edges
                    pend[_P_SLA] += war_sla_accesses
                    pend[_P_TT] += 2 * war_edges
                    tt_pred[task_id] += war_edges
                    predecessors_added += war_edges
                # "Flush reader list of depID"
                if reader_list >= 0:
                    rla_accesses = rla_flush(reader_list)
                    accesses += rla_accesses
                    pend[_P_RLA] += rla_accesses
                # "Set lastWriterID of depID to taskID and mark valid"
                dt_last_writer[dep_id] = task_id
                dt_lw_valid[dep_id] = 1
                accesses += 1
                pend[_P_DT] += 1

            # dat.sample_occupancy(), batched.
            pend[_P_OCC_SAMPLES] += 1
            pend[_P_OCC_TOTAL] += dat._occupied_sets
            cycles = accesses * access_cycles
            pend[_P_I_ADD] += 1
            pend[_P_CYCLES] += cycles
            pend[_P_DEPS] += 1
            add_result.cycles = cycles
            add_result.dependence_id = dep_id
            add_result.predecessors_added = predecessors_added
            return add_result

        # ---------------------------------------------------------- complete_creation
        def complete_creation(descriptor_address):
            pend[_P_TAT_LOOKUPS] += 1
            task_id = tat_by.get(descriptor_address)
            if task_id is None:
                raise UnknownTaskError(
                    f"task descriptor {descriptor_address:#x} is not tracked by the DMU"
                )
            if tt_complete[task_id]:
                raise DMUProtocolError(
                    f"task descriptor {descriptor_address:#x} completed creation twice"
                )
            tt_complete[task_id] = 1
            accesses = 2  # TAT lookup + Task Table read/update
            pend[_P_TAT] += 1
            pend[_P_TT] += 1
            became_ready = False
            if tt_pred[task_id] == 0:
                ready_push(task_id)
                accesses += 1
                pend[_P_RQ] += 1
                became_ready = True
            cycles = accesses * access_cycles
            pend[_P_I_COMPLETE] += 1
            pend[_P_CYCLES] += cycles
            complete_result.cycles = cycles
            complete_result.became_ready = became_ready
            return complete_result

        # ---------------------------------------------------------- finish_task
        def finish_task(descriptor_address):
            pend[_P_TAT_LOOKUPS] += 1
            task_id = tat_by.get(descriptor_address)
            if task_id is None:
                raise UnknownTaskError(
                    f"task descriptor {descriptor_address:#x} is not tracked by the DMU"
                )
            accesses = 2  # TAT lookup + Task Table read
            pend[_P_TAT] += 1
            pend[_P_TT] += 1
            tasks_woken = 0
            successor_list = tt_succ_list[task_id]
            dependence_list = tt_dep_list[task_id]

            # First loop: wake up successors (inlined single-entry-chain
            # iterate — append-only lists fill left to right with no holes).
            if sla_list_valid[successor_list] == 0:
                accesses += 1
                pend[_P_SLA] += 1
            else:
                if sla_next[successor_list] == successor_list:
                    entry_valid = sla_valid[successor_list]
                    base = successor_list * per
                    successors = sla_elements[base : base + entry_valid]
                    sla_accesses = 1
                else:
                    successors, sla_accesses = sla_iterate(successor_list)
                num_successors = len(successors)
                accesses += sla_accesses + num_successors
                pend[_P_SLA] += sla_accesses
                pend[_P_TT] += num_successors
                for successor_id in successors:
                    remaining = tt_pred[successor_id] - 1
                    tt_pred[successor_id] = remaining
                    if remaining == 0:
                        if tt_complete[successor_id]:
                            ready_push(successor_id)
                            tasks_woken += 1
                    elif remaining < 0:
                        raise DMUProtocolError(
                            f"task id {successor_id} predecessor count went negative"
                        )
                accesses += tasks_woken
                pend[_P_RQ] += tasks_woken

            # Second loop: clean this task out of its dependences.
            if dla_list_valid[dependence_list] == 0:
                accesses += 1
                pend[_P_DLA] += 1
            else:
                if dla_next[dependence_list] == dependence_list:
                    entry_valid = dla_valid[dependence_list]
                    base = dependence_list * per
                    dependences = dla_elements[base : base + entry_valid]
                    dla_accesses = 1
                else:
                    dependences, dla_accesses = dla_iterate(dependence_list)
                accesses += dla_accesses
                pend[_P_DLA] += dla_accesses
                dep_table_accesses = 0
                rla_accesses_total = 0
                dat_releases = 0
                for dep_id in dependences:
                    if not dt_valid[dep_id]:
                        # Already recycled by an earlier occurrence of the
                        # same address in this task's list.
                        continue
                    dep_table_accesses += 1
                    reader_list = dt_reader_list[dep_id]
                    if reader_list >= 0:
                        _found, rla_accesses = rla_remove(reader_list, task_id)
                        rla_accesses_total += rla_accesses
                    writer_valid = dt_lw_valid[dep_id]
                    if writer_valid and dt_last_writer[dep_id] == task_id:
                        dt_last_writer[dep_id] = -1
                        dt_lw_valid[dep_id] = 0
                        writer_valid = 0
                        dep_table_accesses += 1
                    if not writer_valid and (
                        reader_list < 0 or rla_list_valid[reader_list] == 0
                    ):
                        if reader_list >= 0:
                            rla_accesses_total += rla_free_list(reader_list)
                        # Inlined dependence_table.free().
                        dt_valid[dep_id] = 0
                        dependence_table._occupancy -= 1
                        dep_table_accesses += 1
                        dat_release(dt_address[dep_id])
                        dat_releases += 1
                accesses += dep_table_accesses + rla_accesses_total + dat_releases
                pend[_P_DT] += dep_table_accesses
                pend[_P_RLA] += rla_accesses_total
                pend[_P_DAT] += dat_releases

            # Free the task's own resources — inlined single-entry free_list
            # (release_entry: blank slots, reset valid, LIFO-push).
            if sla_next[successor_list] == successor_list:
                sla_in_use[successor_list] = 0
                base = successor_list * per
                sla_elements[base : base + per] = sla_blank
                sla_valid[successor_list] = 0
                sla.free_entries += 1
                sla_recycled.append(successor_list)
                sla_free_accesses = 1
            else:
                sla_free_accesses = sla_free_list(successor_list)
            accesses += sla_free_accesses
            pend[_P_SLA] += sla_free_accesses
            if dla_next[dependence_list] == dependence_list:
                dla_in_use[dependence_list] = 0
                base = dependence_list * per
                dla_elements[base : base + per] = dla_blank
                dla_valid[dependence_list] = 0
                dla.free_entries += 1
                dla_recycled.append(dependence_list)
                dla_free_accesses = 1
            else:
                dla_free_accesses = dla_free_list(dependence_list)
            accesses += dla_free_accesses
            pend[_P_DLA] += dla_free_accesses
            # Inlined task_table.free().
            tt_valid[task_id] = 0
            task_table._occupancy -= 1
            accesses += 1
            pend[_P_TT] += 1
            tat_release(descriptor_address)
            accesses += 1
            pend[_P_TAT] += 1

            cycles = accesses * access_cycles
            pend[_P_I_FINISH] += 1
            pend[_P_CYCLES] += cycles
            pend[_P_FINISHED] += 1
            finish_result.cycles = cycles
            finish_result.tasks_woken = tasks_woken
            return finish_result

        # ---------------------------------------------------------- get_ready_task
        def get_ready_task():
            pend[_P_RQ] += 1
            pend[_P_I_READY] += 1
            if rq_queue:
                ready_queue.total_pops += 1
                task_id = rq_popleft()
            else:
                pend[_P_CYCLES] += access_cycles
                pend[_P_NULL_POPS] += 1
                return null_ready_result
            pend[_P_TT] += 1
            pend[_P_CYCLES] += ready_result.cycles
            pend[_P_READY_POPS] += 1
            ready_result.descriptor_address = tt_descriptor[task_id]
            ready_result.num_successors = tt_succ[task_id]
            return ready_result

        # ---------------------------------------------------------- wire up
        dmu._stats_sync = flush
        dmu.create_task = create_task
        dmu.add_dependence = add_dependence
        dmu.complete_creation = complete_creation
        dmu.finish_task = finish_task
        dmu.get_ready_task = get_ready_task
        # average_occupied_sets() is read directly by the machine model (not
        # through dmu.stats), so wrap it to commit the batched occupancy
        # samples first.
        original_average = dat.average_occupied_sets

        def average_occupied_sets() -> float:
            flush()
            return original_average()

        dat.average_occupied_sets = average_occupied_sets
