"""The ``pure`` storage backend: today's plain-Python columnar core.

Everything is inherited from :class:`~repro.core.backends.base.StorageBackend`:
plain-list columns and slabs, C-level ``list.index`` scans, Python-loop
audits, and — crucially — **no instruction dispatch override**, so the DMU's
class methods run exactly as they did before the backend seam existed and
the pure per-instruction path carries zero new overhead.
"""

from __future__ import annotations

from .base import StorageBackend


class PureBackend(StorageBackend):
    """Plain Python lists + the DMU's own instruction methods."""

    name = "pure"
