"""The column-slab interface every DMU storage backend implements.

A *backend* owns two concerns of the columnar core:

1. **Storage primitives** — the growable integer columns and flat element
   slabs the structures (:class:`~repro.core.task_table.TaskTable`,
   :class:`~repro.core.dependence_table.DependenceTable`,
   :class:`~repro.core.list_array.ListArray`,
   :class:`~repro.core.alias_table.AliasTable`,
   :class:`~repro.core.ready_queue.ReadyQueue`) allocate through
   :meth:`make_column` / :meth:`make_slab` / :meth:`make_queue`, plus the
   scan primitives (:meth:`find_first`) and whole-structure audit scans
   (:meth:`audit_list_array`, :meth:`audit_alias_table`) over them.

2. **Instruction dispatch** — :meth:`install` runs once per
   :class:`~repro.core.dmu.DependenceManagementUnit` after its structures
   are built and may rebind the five ISA instruction entry points on the
   instance (the *cached backend references* the DMU dispatches through).
   The pure backend installs nothing — the methods on the DMU class *are*
   its implementation — so the pure per-instruction path is exactly what it
   was before the seam existed.

Contract for columns and slabs: they are ``MutableSequence[int]`` objects
with list semantics — scalar ``[]`` get/set, ``append``/``extend``, slice
read/assignment and ``index(value, start, stop)``.  Every value read out of
a column must be a plain Python ``int`` (internal IDs and addresses flow
into result objects, JSON cache entries and CSV digests, so a backend may
not leak wrapper scalar types such as ``numpy.int64``).

Both shipped backends deliberately *share* the plain-list representation
for live columns.  This is a measured decision, not an omission: on
CPython the per-instruction hot path is dominated by scalar element access
(one read/write per list-array slot, per way, per counter), and numpy
scalar indexing/assignment is 4-6x *slower* than list indexing (boxing an
``int64`` per access), so numpy-held live columns regress every
instruction.  Where numpy genuinely wins — whole-slab audit scans over
thousands of slots, used by the differential harness to cross-check the
maintained counters — the ``accel`` backend overrides the audit primitives
with vectorized implementations; its per-instruction speed comes from
:meth:`install` (specialized instruction kernels with batched counter
commits).  See ``docs/architecture.md`` ("Backend architecture").
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Sequence

#: Marker stored in unused list-array element slots (kept in sync with
#: :data:`repro.core.list_array.INVALID_ELEMENT`; duplicated here so the
#: backend layer does not import the structure layer it serves).
INVALID_ELEMENT = 0xFFF


class StorageBackend:
    """Base backend: plain-list storage, scalar scans, no dispatch override."""

    #: Resolved backend name (``"pure"`` or ``"accel"``).
    name = "abstract"

    # ------------------------------------------------------------------ storage
    def make_column(self, initial: Iterable[int] = ()) -> List[int]:
        """A growable integer column (one value per handle/entry)."""
        return list(initial)

    def make_slab(self, initial: Iterable[int] = ()) -> List[int]:
        """A flat element slab (``entries * elements_per_entry`` slots)."""
        return list(initial)

    def make_queue(self) -> Deque[int]:
        """FIFO storage for the Ready Queue."""
        return deque()

    # ------------------------------------------------------------------ scans
    def find_first(self, slab: Sequence[int], value: int, start: int, stop: int) -> int:
        """Index of the first ``value`` in ``slab[start:stop]`` (C-level scan)."""
        return slab.index(value, start, stop)

    # ------------------------------------------------------------------ audits
    # Whole-structure recounts from the raw columns, bypassing every
    # incrementally-maintained counter.  The differential tests compare these
    # against the live counters (free_entries, _list_valid, _occupied_sets,
    # occupancy) after randomized op streams — a backend whose kernels drift
    # from the storage contract fails here before it can corrupt a digest.
    def audit_list_array(self, list_array) -> Dict[str, int]:
        """Ground-truth occupancy recount of a :class:`ListArray`."""
        entries_in_use = 0
        for flag in list_array._in_use:
            if flag:
                entries_in_use += 1
        live_elements = 0
        for element in list_array._elements:
            if element != INVALID_ELEMENT:
                live_elements += 1
        valid_total = 0
        for count in list_array._valid:
            valid_total += count
        return {
            "entries_in_use": entries_in_use,
            "free_entries": list_array.num_entries - entries_in_use,
            "live_elements": live_elements,
            "valid_total": valid_total,
        }

    def audit_alias_table(self, alias_table) -> Dict[str, int]:
        """Ground-truth occupancy recount of an :class:`AliasTable`."""
        occupied_sets = 0
        entries_in_use = 0
        for count in alias_table._set_count:
            if count:
                occupied_sets += 1
                entries_in_use += count
        return {
            "occupied_sets": occupied_sets,
            "entries_in_use": entries_in_use,
            "directory_entries": len(alias_table._by_address),
        }

    # ------------------------------------------------------------------ dispatch
    def install(self, dmu) -> None:
        """Hook run once per DMU after construction; may rebind instructions.

        The base/pure implementation installs nothing: the DMU's own methods
        are the pure instruction path.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
