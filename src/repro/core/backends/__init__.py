"""Pluggable storage/execution backends for the columnar DMU core.

Two backends ship:

``pure``
    Plain Python lists and the DMU's own instruction methods — the reference
    implementation, always available, and the default.

``accel``
    Same column layout, but :meth:`~repro.core.backends.base.StorageBackend.install`
    rebinds the five ISA instructions to specialized closure kernels with
    batched counter commits, and the audit scans are vectorized with numpy.
    Requires numpy; when numpy is not importable, resolution falls back to
    ``pure`` with a :class:`RuntimeWarning` (results are identical either
    way — only throughput differs).

Backends are **execution strategies, not semantics**: every backend must
produce byte-identical simulation results, which is why
:func:`repro.experiments.cache.canonical_run_key` excludes the
``DMUConfig.backend`` field and cache entries / shard merges are shared
across backends.  The differential tests in
``tests/test_columnar_differential.py`` enforce the identity contract.
"""

from __future__ import annotations

import warnings
from typing import Optional

from ...config import DMU_BACKENDS
from ...errors import ConfigurationError
from .base import StorageBackend

#: Recognized backend names, in preference order.
BACKEND_NAMES = DMU_BACKENDS

#: The backend used when none is requested.
DEFAULT_BACKEND = "pure"

#: Resolved backend singletons, keyed by name.  Backends are stateless
#: (all per-DMU state lives on the DMU the kernels are installed on), so a
#: single shared instance per name is safe and keeps resolution O(dict get)
#: on the DMU construction path.
_INSTANCES: dict = {}


def numpy_available() -> bool:
    """True when numpy can be imported (the ``accel`` backend's requirement).

    A plain module-level function so tests can monkeypatch it to simulate a
    numpy-less host and exercise the fallback path.
    """
    try:
        import numpy  # noqa: F401
    except Exception:
        return False
    return True


def resolve_backend(name: Optional[str] = None) -> StorageBackend:
    """Resolve a backend name to its singleton instance.

    ``None`` means :data:`DEFAULT_BACKEND`.  Unknown names raise
    :class:`~repro.errors.ConfigurationError` (mirroring
    ``DMUConfig.validate``); ``accel`` without numpy degrades to ``pure``
    with a :class:`RuntimeWarning` instead of failing, so a config produced
    on a numpy-equipped host still runs — identically — anywhere.
    """
    if name is None:
        name = DEFAULT_BACKEND
    if name not in BACKEND_NAMES:
        raise ConfigurationError(
            f"unknown DMU backend: {name!r} (expected one of {BACKEND_NAMES})"
        )
    if name == "accel" and not numpy_available():
        warnings.warn(
            "DMU backend 'accel' requires numpy, which is not importable; "
            "falling back to the 'pure' backend (results are identical, only "
            "throughput differs)",
            RuntimeWarning,
            stacklevel=2,
        )
        name = "pure"
    backend = _INSTANCES.get(name)
    if backend is None:
        if name == "accel":
            from .accel import AccelBackend

            backend = AccelBackend()
        else:
            from .pure import PureBackend

            backend = PureBackend()
        _INSTANCES[name] = backend
    return backend


__all__ = [
    "BACKEND_NAMES",
    "DEFAULT_BACKEND",
    "StorageBackend",
    "numpy_available",
    "resolve_backend",
]
