"""Activity-based chip energy model and EDP metrics.

Each core draws one of three power levels depending on the phase its thread
is in (from the simulation :class:`~repro.sim.timeline.Timeline`):

* ``EXEC``           — full active power (out-of-order execution of task code),
* ``DEPS``/``SCHED`` — runtime-system power (mostly pointer chasing and
  synchronization: lower IPC, hence lower dynamic power than task code),
* ``IDLE``           — clock-gated idle power.

The uncore (shared L2, NoC) draws a constant power while the chip is on, and
the DMU adds the energy of its SRAM accesses plus a small leakage component.
The paper reports the DMU's contribution as "less than 0.01% of the total
power", which this model reproduces because the DMU performs a few tens of
accesses per task while the cores run for milliseconds.

Energy is reported in millijoules and EDP in millijoule-seconds; the
experiments only ever use EDP *ratios*, so the absolute scale does not affect
the reproduced results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import ChipConfig
from ..core.stats import DMUStats
from ..core.storage import DMUStorageModel
from ..sim.timeline import Phase, Timeline
from ..units import cycles_to_seconds

#: Leakage power of the DMU SRAM arrays (watts).  Small structures at 22 nm
#: leak on the order of a few milliwatts.
DMU_LEAKAGE_WATTS = 0.004


@dataclass(frozen=True)
class EnergyReport:
    """Energy accounting of one simulation."""

    execution_seconds: float
    core_energy_mj: float
    uncore_energy_mj: float
    dmu_energy_mj: float

    @property
    def total_energy_mj(self) -> float:
        return self.core_energy_mj + self.uncore_energy_mj + self.dmu_energy_mj

    @property
    def edp(self) -> float:
        """Energy-delay product in mJ * s."""
        return self.total_energy_mj * self.execution_seconds

    @property
    def average_power_watts(self) -> float:
        if self.execution_seconds <= 0:
            return 0.0
        return self.total_energy_mj / 1000.0 / self.execution_seconds

    @property
    def dmu_power_fraction(self) -> float:
        """Fraction of total energy consumed by the DMU."""
        total = self.total_energy_mj
        return self.dmu_energy_mj / total if total > 0 else 0.0

    # ------------------------------------------------------------------ serialization
    def to_dict(self) -> dict:
        """JSON-safe form (all four stored fields; derived metrics recompute)."""
        return {
            "execution_seconds": self.execution_seconds,
            "core_energy_mj": self.core_energy_mj,
            "uncore_energy_mj": self.uncore_energy_mj,
            "dmu_energy_mj": self.dmu_energy_mj,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EnergyReport":
        """Rebuild an :class:`EnergyReport` from :meth:`to_dict` output."""
        return cls(
            execution_seconds=data["execution_seconds"],
            core_energy_mj=data["core_energy_mj"],
            uncore_energy_mj=data["uncore_energy_mj"],
            dmu_energy_mj=data["dmu_energy_mj"],
        )


class ChipEnergyModel:
    """Computes an :class:`EnergyReport` from a timeline and DMU statistics."""

    def __init__(self, chip: ChipConfig, dmu_storage: Optional[DMUStorageModel] = None) -> None:
        chip.validate()
        self.chip = chip
        self.dmu_storage = dmu_storage

    def core_energy_mj(self, timeline: Timeline) -> float:
        """Energy of all cores integrated over their per-phase activity."""
        core = self.chip.core
        total_joules = 0.0
        for thread in timeline.threads:
            exec_seconds = cycles_to_seconds(thread.totals[Phase.EXEC], core.clock_ghz)
            runtime_seconds = cycles_to_seconds(
                thread.totals[Phase.DEPS] + thread.totals[Phase.SCHED], core.clock_ghz
            )
            accounted = (
                thread.totals[Phase.EXEC]
                + thread.totals[Phase.DEPS]
                + thread.totals[Phase.SCHED]
                + thread.totals[Phase.IDLE]
            )
            # Any unaccounted tail (threads that finished before the end of the
            # simulation) is charged at idle power.
            idle_cycles = timeline.end_cycle - accounted + thread.totals[Phase.IDLE]
            idle_seconds = cycles_to_seconds(max(0, idle_cycles), core.clock_ghz)
            total_joules += (
                exec_seconds * core.active_power_watts
                + runtime_seconds * core.runtime_power_watts
                + idle_seconds * core.idle_power_watts
            )
        return total_joules * 1000.0

    def uncore_energy_mj(self, execution_seconds: float) -> float:
        return self.chip.uncore_power_watts * execution_seconds * 1000.0

    def dmu_energy_mj(self, dmu_stats: Optional[DMUStats], execution_seconds: float) -> float:
        """DMU energy: per-access dynamic energy plus leakage."""
        if self.dmu_storage is None:
            return 0.0
        access_energy_pj = self.dmu_storage.average_access_energy_pj()
        accesses = dmu_stats.total_accesses if dmu_stats is not None else 0
        dynamic_mj = accesses * access_energy_pj * 1e-9
        leakage_mj = DMU_LEAKAGE_WATTS * execution_seconds * 1000.0
        return dynamic_mj + leakage_mj

    def report(self, timeline: Timeline, dmu_stats: Optional[DMUStats] = None) -> EnergyReport:
        """Full energy report for one finished simulation."""
        execution_seconds = cycles_to_seconds(timeline.end_cycle, self.chip.clock_ghz)
        return EnergyReport(
            execution_seconds=execution_seconds,
            core_energy_mj=self.core_energy_mj(timeline),
            uncore_energy_mj=self.uncore_energy_mj(execution_seconds),
            dmu_energy_mj=self.dmu_energy_mj(dmu_stats, execution_seconds),
        )


def edp(energy_mj: float, delay_seconds: float) -> float:
    """Energy-delay product."""
    return energy_mj * delay_seconds


def normalized_edp(report: EnergyReport, baseline: EnergyReport) -> float:
    """EDP of ``report`` normalized to ``baseline`` (values below 1.0 are better)."""
    if baseline.edp == 0:
        raise ValueError("baseline EDP is zero; cannot normalize")
    return report.edp / baseline.edp
