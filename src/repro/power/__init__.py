"""Power, energy and EDP models.

The paper evaluates energy efficiency with McPAT (cores, 22 nm, 0.6 V, clock
gating) and CACTI (DMU structures).  This package provides the analytical
substitutes: an activity-based per-core power model driven by the per-thread
timelines (:mod:`repro.power.energy`) and the per-access energy of the DMU
structures (computed in :mod:`repro.core.storage` and aggregated here).
"""

from .energy import ChipEnergyModel, EnergyReport, edp, normalized_edp

__all__ = ["ChipEnergyModel", "EnergyReport", "edp", "normalized_edp"]
