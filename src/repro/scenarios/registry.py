"""Curated scenario bundles: named workload × runtime sweeps with goldens.

A :class:`Scenario` names a reproducible bundle — which workloads to run,
under which runtimes and schedulers — and the registry turns each bundle
into a first-class experiment (``scenario_<name>``) registered alongside
the paper's figures/tables.  That single wiring point is what buys every
scenario the whole campaign stack for free: canonical run keys, the disk
cache, ``--jobs`` fan-out, shard planning/merging, work stealing and the
results daemon all operate on experiment names and plans, never on what
the experiment means.

Each bundle has pinned golden CSV digests and per-runtime cycle counts in
``tests/test_scenarios.py`` (same contract as ``GOLDEN_CSV_DIGESTS`` /
``PINNED_RUNTIME_CYCLES`` for the paper experiments), and the scenario
table in ``docs/scenarios.md`` is drift-tested against
:func:`scenario_catalog`.

This module is imported lazily by :mod:`repro.experiments.registry` (its
``_ensure_scenarios`` hook) — never import it from
:mod:`repro.scenarios.__init__`, or the experiments registry and this one
would import each other eagerly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ExperimentError
from ..experiments.campaign import RunRequest
from ..experiments.common import (
    BASELINE_SCHEDULER,
    ExperimentResult,
    SimulationRunner,
    unique_requests,
)
from .generative import register_builtin_workloads

#: Canonical experiment-name prefix of every scenario bundle.
SCENARIO_EXPERIMENT_PREFIX = "scenario_"

#: All four runtime models, in the paper's comparison order.
ALL_RUNTIMES = ("software", "carbon", "tdm", "task_superscalar")

#: Result columns of every scenario experiment.
COLUMNS = ("workload", "runtime", "scheduler", "total_cycles", "tasks", "speedup")


@dataclass(frozen=True)
class Scenario:
    """One named, curated bundle of workload × runtime × scheduler runs."""

    name: str
    title: str
    description: str
    workloads: Tuple[str, ...]
    runtimes: Tuple[str, ...] = ALL_RUNTIMES
    schedulers: Tuple[str, ...] = (BASELINE_SCHEDULER,)

    @property
    def experiment(self) -> str:
        """The canonical experiment name this scenario registers under."""
        return SCENARIO_EXPERIMENT_PREFIX + self.name


_SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="wide_shallow",
            title="Wide-shallow fan-out",
            description=(
                "Waves of ~96 independent tasks per barrier plus a phased "
                "mixed-skew DAG; stresses task-creation rate and barrier "
                "drain/refill, the Figure 10 regime taken to extremes."
            ),
            workloads=("gen_wide_shallow", "gen_phased"),
        ),
        Scenario(
            name="deep_chain",
            title="Deep dependence chains",
            description=(
                "A few ~48-deep inout chains with almost no parallelism; "
                "every task finish wakes exactly one successor, isolating "
                "the wake-up/notification path of each runtime."
            ),
            workloads=("gen_deep_chain",),
        ),
        Scenario(
            name="reader_storm",
            title="Reader storm on SLA/DLA",
            description=(
                "Heavily skewed reads (skew 0.9) pile almost every task "
                "onto a few hot blocks with occasional writers, forcing "
                "reader/dependence lists far longer than any paper "
                "benchmark produces."
            ),
            workloads=("gen_reader_storm",),
        ),
        Scenario(
            name="alias_conflict",
            title="Alias-conflict heavy",
            description=(
                "Data blocks spaced to collide in the TAT/DAT index "
                "function; stresses associativity and the alias-table "
                "path under sustained set conflicts."
            ),
            workloads=("gen_alias_conflict",),
        ),
        Scenario(
            name="trace_replay",
            title="Trace-replay fixtures",
            description=(
                "The bundled JSON trace fixtures (pure-'after' diamond and "
                "a map/shuffle/reduce pipeline) replayed through all four "
                "runtimes; proves imported DAGs are first-class workloads."
            ),
            workloads=("trace_diamond", "trace_mapreduce"),
        ),
    )
}


def available_scenarios() -> List[str]:
    """Names of every curated scenario bundle, in registry order."""
    return list(_SCENARIOS)


def get_scenario(name: str) -> Scenario:
    """Look up one scenario by bundle name (without the experiment prefix)."""
    key = name.lower()
    if key.startswith(SCENARIO_EXPERIMENT_PREFIX):
        key = key[len(SCENARIO_EXPERIMENT_PREFIX):]
    scenario = _SCENARIOS.get(key)
    if scenario is None:
        raise ExperimentError(
            f"unknown scenario {name!r}; available: {', '.join(available_scenarios())}"
        )
    return scenario


def scenario_catalog() -> List[Dict[str, object]]:
    """Machine-readable description of every bundle (docs drift-test source)."""
    return [
        {
            "name": scenario.name,
            "experiment": scenario.experiment,
            "title": scenario.title,
            "description": scenario.description,
            "workloads": list(scenario.workloads),
            "runtimes": list(scenario.runtimes),
            "schedulers": list(scenario.schedulers),
        }
        for scenario in _SCENARIOS.values()
    ]


def scenario_table_markdown() -> str:
    """The Markdown bundle table embedded in ``docs/scenarios.md``.

    The docs page carries this table between ``SCENARIO-TABLE`` markers and
    ``tests/test_scenarios.py`` regenerates it from here, so registry and
    documentation cannot drift apart.
    """
    lines = [
        "| scenario | experiment | title | workloads | runtimes |",
        "| --- | --- | --- | --- | --- |",
    ]
    for scenario in _SCENARIOS.values():
        lines.append(
            "| {name} | `{experiment}` | {title} | {workloads} | {runtimes} |".format(
                name=scenario.name,
                experiment=scenario.experiment,
                title=scenario.title,
                workloads=", ".join(f"`{w}`" for w in scenario.workloads),
                runtimes=len(scenario.runtimes),
            )
        )
    return "\n".join(lines) + "\n"


def _select_workloads(scenario: Scenario, benchmarks: Optional[Sequence[str]]) -> List[str]:
    """The bundle's workloads, optionally narrowed by a ``benchmarks`` subset."""
    if benchmarks is None:
        return list(scenario.workloads)
    unknown = [name for name in benchmarks if name not in scenario.workloads]
    if unknown:
        raise ExperimentError(
            f"scenario {scenario.name!r} has no workload(s) {', '.join(unknown)}; "
            f"it bundles: {', '.join(scenario.workloads)}"
        )
    return [name for name in scenario.workloads if name in benchmarks]


def plan_scenario(
    scenario: Scenario,
    runner: SimulationRunner,
    benchmarks: Optional[Sequence[str]] = None,
    **_: object,
) -> List[RunRequest]:
    """Every simulation :func:`run_scenario` will request, for prefetch/shard."""
    requests = []
    for workload in _select_workloads(scenario, benchmarks):
        requests.append(RunRequest(workload, "software"))
        for runtime in scenario.runtimes:
            for scheduler in scenario.schedulers:
                requests.append(RunRequest(workload, runtime, scheduler))
    return unique_requests(requests)


def run_scenario(
    scenario: Scenario,
    scale: float = 1.0,
    benchmarks: Optional[Sequence[str]] = None,
    runner: Optional[SimulationRunner] = None,
    **_: object,
) -> ExperimentResult:
    """Run one bundle: every workload under every runtime × scheduler.

    Speedups are normalized per workload to the software-runtime FIFO
    baseline, exactly like the paper's figures.
    """
    register_builtin_workloads()
    runner = runner or SimulationRunner(scale=scale)
    result = ExperimentResult(
        experiment=scenario.experiment,
        title=f"Scenario {scenario.name}: {scenario.title}",
        columns=COLUMNS,
    )
    for workload in _select_workloads(scenario, benchmarks):
        baseline = runner.run(workload, "software", BASELINE_SCHEDULER)
        for runtime in scenario.runtimes:
            for scheduler in scenario.schedulers:
                sim = runner.run(workload, runtime, scheduler)
                result.add_row(
                    workload=workload,
                    runtime=runtime,
                    scheduler=scheduler,
                    total_cycles=sim.total_cycles,
                    tasks=sim.num_tasks_executed,
                    speedup=sim.speedup_over(baseline),
                )
        result.add_note(
            f"{workload}: baseline software/{BASELINE_SCHEDULER} "
            f"{baseline.total_cycles} cycles over {baseline.num_tasks_executed} tasks"
        )
    result.add_note(scenario.description)
    return result


def _make_run(scenario: Scenario) -> Callable[..., ExperimentResult]:
    def run(
        scale: float = 1.0,
        benchmarks: Optional[Sequence[str]] = None,
        runner: Optional[SimulationRunner] = None,
        **kwargs: object,
    ) -> ExperimentResult:
        return run_scenario(
            scenario, scale=scale, benchmarks=benchmarks, runner=runner, **kwargs
        )

    run.__name__ = f"run_{scenario.experiment}"
    return run


def _make_plan(scenario: Scenario) -> Callable[..., List[RunRequest]]:
    def plan(
        runner: SimulationRunner,
        benchmarks: Optional[Sequence[str]] = None,
        **kwargs: object,
    ) -> List[RunRequest]:
        register_builtin_workloads()
        return plan_scenario(scenario, runner, benchmarks=benchmarks, **kwargs)

    plan.__name__ = f"plan_{scenario.experiment}"
    return plan


def register_scenario_experiments(
    register: Callable[..., None],
) -> None:
    """Install every bundle as an experiment via the given ``register`` hook.

    ``register`` is :func:`repro.experiments.registry.register_experiment`;
    taking it as an argument keeps this module import-safe (the experiments
    registry imports *us* lazily, we never import it).  Also installs the
    scenario workloads so planning works immediately.
    """
    register_builtin_workloads()
    for scenario in _SCENARIOS.values():
        register(
            scenario.experiment,
            _make_run(scenario),
            plan=_make_plan(scenario),
            title=f"Scenario {scenario.name}: {scenario.title}",
            aliases=(scenario.name,),
            kind="scenario",
            replace=True,
        )
