"""Versioned task-graph trace import/export (JSON and CSV) + replay workloads.

A *trace* is an exported task DAG — for example an instrumented OpenMP/OmpSs
application dump — that replays through all four runtime models as a regular
:class:`~repro.runtime.task.TaskProgram`.  The format is deliberately small:

* **tasks** carry a unique integer ``uid``, a duration (``work_us``) and an
  optional ``name``/``kind``;
* **dependences** are either data ``accesses`` (address + size + ``in`` /
  ``out`` / ``inout`` mode, exactly the model's ``depend(...)`` clauses) or
  explicit ``after`` edges naming predecessor uids.  ``after`` edges are
  lowered to synthetic token blocks (the predecessor writes a per-task token
  address, the successor reads it), so control-only DAGs flow through the
  dependence-tracking hardware models unchanged;
* **regions** group tasks between barriers (one region = one parallel
  region); ``after`` edges never cross regions — the barrier already orders
  them.

Validation is strict and every :class:`~repro.errors.TraceFormatError`
carries a precise location (``regions[0].tasks[3].accesses[1].mode``,
``line 7`` for CSV), so a malformed multi-thousand-task export is
debuggable from the message alone.  Rejected outright: duplicate uids,
dangling or cross-region ``after`` references, dependence cycles (reported
with the offending uid path), and addresses inside the reserved token range.

**Declaration order does not matter.**  Tasks are canonicalized into a
deterministic topological order (Kahn's algorithm over the ``after`` edges,
ready set ordered by uid) before data-access dependences are derived, so two
files describing the same graph in different task orders import to programs
with the identical :func:`program_digest` — and therefore identical
simulation results and canonical run keys for any workload built on them.
:mod:`tests.test_trace_properties` pins these laws with hypothesis.

:class:`TraceReplayWorkload` wraps an imported program as a first-class
:class:`~repro.workloads.base.Workload`, and the bundled fixtures under
``src/repro/scenarios/traces/`` are registered by name (``trace_diamond``,
``trace_mapreduce``) so campaign workers rebuild them from the workload
registry alone — plans, sharding, caching and the results daemon all work.
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
import pathlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import TraceFormatError
from ..runtime.task import (
    AccessMode,
    DependenceSpec,
    TaskDefinition,
    TaskProgram,
    TaskRegion,
)
from ..workloads.base import GranularityOption, Workload

#: Bumped whenever the trace schema changes incompatibly; readers refuse
#: unknown versions instead of misparsing them.
TRACE_FORMAT_VERSION = 1

#: Base of the reserved address range used to lower explicit ``after`` edges
#: into synthetic token dependences (one 64-byte token block per task uid).
#: User data accesses must stay below it; the importer enforces that.
TOKEN_BASE = 0xFE00_0000_0000

#: Size in bytes of one synthetic token block.
TOKEN_STRIDE = 64

#: Columns of the CSV flavor of the format, in order.  The three trailing
#: columns default to 0 when empty; ``sequential_us_before`` is a region
#: attribute and may only be set on the first row of its region.
CSV_COLUMNS = (
    "region",
    "uid",
    "name",
    "kind",
    "work_us",
    "accesses",
    "after",
    "memory_sensitivity",
    "creation_work_us",
    "sequential_us_before",
)

_MODES = {mode.value: mode for mode in AccessMode}


def _fail(location: str, message: str) -> None:
    raise TraceFormatError(location, message)


# --------------------------------------------------------------------- parsing
def _parse_address(value: object, location: str) -> int:
    """Accept plain ints and ``0x``-prefixed hex strings."""
    if isinstance(value, bool):
        _fail(location, f"address must be an integer or hex string, got {value!r}")
    if isinstance(value, int):
        address = value
    elif isinstance(value, str):
        try:
            address = int(value, 16) if value.lower().startswith("0x") else int(value)
        except ValueError:
            _fail(location, f"address must be an integer or hex string, got {value!r}")
    else:
        _fail(location, f"address must be an integer or hex string, got {value!r}")
    if address < 0:
        _fail(location, f"address must be >= 0, got {address}")
    if address >= TOKEN_BASE:
        _fail(
            location,
            f"address {address:#x} falls in the reserved token range "
            f"(>= {TOKEN_BASE:#x}) used to lower 'after' edges",
        )
    return address


def _parse_access(data: object, location: str) -> DependenceSpec:
    if not isinstance(data, dict):
        _fail(location, f"access must be an object, got {type(data).__name__}")
    unknown = sorted(set(data) - {"address", "size", "mode"})
    if unknown:
        _fail(location, f"unknown access field(s): {', '.join(unknown)}")
    for field in ("address", "size", "mode"):
        if field not in data:
            _fail(f"{location}.{field}", "missing required field")
    address = _parse_address(data["address"], f"{location}.address")
    size = data["size"]
    if not isinstance(size, int) or isinstance(size, bool) or size <= 0:
        _fail(f"{location}.size", f"size must be a positive integer, got {size!r}")
    mode = data["mode"]
    if mode not in _MODES:
        _fail(
            f"{location}.mode",
            f"mode must be one of {', '.join(sorted(_MODES))}, got {mode!r}",
        )
    return DependenceSpec(address, size, _MODES[mode])


def _parse_uid(value: object, location: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        _fail(location, f"uid must be a non-negative integer, got {value!r}")
    return value


def _parse_float(value: object, location: str, minimum: float = 0.0) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail(location, f"must be a number, got {value!r}")
    number = float(value)
    if number < minimum:
        _fail(location, f"must be >= {minimum}, got {number}")
    return number


_TASK_FIELDS = frozenset(
    {"uid", "name", "kind", "work_us", "accesses", "after",
     "memory_sensitivity", "creation_work_us"}
)


class _TraceTask:
    """One parsed-but-not-yet-ordered task declaration."""

    __slots__ = ("uid", "name", "kind", "work_us", "accesses", "after",
                 "memory_sensitivity", "creation_work_us", "location")

    def __init__(self, data: Dict[str, object], location: str) -> None:
        unknown = sorted(set(data) - _TASK_FIELDS)
        if unknown:
            _fail(location, f"unknown task field(s): {', '.join(unknown)}")
        if "uid" not in data:
            _fail(f"{location}.uid", "missing required field")
        if "work_us" not in data:
            _fail(f"{location}.work_us", "missing required field")
        self.uid = _parse_uid(data["uid"], f"{location}.uid")
        name = data.get("name", f"task{self.uid}")
        kind = data.get("kind", "trace")
        for label, value in (("name", name), ("kind", kind)):
            if not isinstance(value, str) or not value:
                _fail(f"{location}.{label}", f"must be a non-empty string, got {value!r}")
        self.name = name
        self.kind = kind
        self.work_us = _parse_float(data["work_us"], f"{location}.work_us")
        self.memory_sensitivity = _parse_float(
            data.get("memory_sensitivity", 0.0), f"{location}.memory_sensitivity"
        )
        if self.memory_sensitivity > 1.0:
            _fail(f"{location}.memory_sensitivity", "must be in [0, 1]")
        self.creation_work_us = _parse_float(
            data.get("creation_work_us", 0.0), f"{location}.creation_work_us"
        )
        accesses = data.get("accesses", [])
        if not isinstance(accesses, list):
            _fail(f"{location}.accesses", "must be a list of access objects")
        self.accesses = tuple(
            _parse_access(access, f"{location}.accesses[{index}]")
            for index, access in enumerate(accesses)
        )
        after = data.get("after", [])
        if not isinstance(after, list):
            _fail(f"{location}.after", "must be a list of predecessor uids")
        seen: List[int] = []
        for index, ref in enumerate(after):
            uid = _parse_uid(ref, f"{location}.after[{index}]")
            if uid == self.uid:
                _fail(f"{location}.after[{index}]", f"task {self.uid} depends on itself")
            if uid in seen:
                _fail(f"{location}.after[{index}]", f"duplicate 'after' reference to uid {uid}")
            seen.append(uid)
        self.after = tuple(seen)
        self.location = location


def _canonical_order(tasks: Sequence[_TraceTask], region_location: str) -> List[_TraceTask]:
    """Deterministic topological order: Kahn over ``after``, uid tie-break.

    This is what makes imports declaration-order-insensitive — the emitted
    creation order (which data-access dependence derivation depends on) is a
    pure function of the graph, not of the file layout.
    """
    by_uid = {task.uid: task for task in tasks}
    pending = {task.uid: len(task.after) for task in tasks}
    dependents: Dict[int, List[int]] = {task.uid: [] for task in tasks}
    for task in tasks:
        for ref in task.after:
            dependents[ref].append(task.uid)
    import heapq

    ready = [uid for uid, count in pending.items() if count == 0]
    heapq.heapify(ready)
    ordered: List[_TraceTask] = []
    while ready:
        uid = heapq.heappop(ready)
        ordered.append(by_uid[uid])
        for successor in dependents[uid]:
            pending[successor] -= 1
            if pending[successor] == 0:
                heapq.heappush(ready, successor)
    if len(ordered) != len(tasks):
        remaining = {uid for uid, count in pending.items() if count > 0}
        # Walk predecessor edges inside the remainder until a uid repeats:
        # that repeat closes a genuine cycle we can show in the message.
        cursor = min(remaining)
        path = [cursor]
        while True:
            cursor = min(ref for ref in by_uid[cursor].after if ref in remaining)
            if cursor in path:
                cycle = path[path.index(cursor):] + [cursor]
                break
            path.append(cursor)
        _fail(
            region_location,
            "dependence cycle through 'after' edges: "
            + " -> ".join(str(uid) for uid in reversed(cycle)),
        )
    return ordered


def parse_trace(document: Dict[str, object]) -> TaskProgram:
    """Build a :class:`TaskProgram` from a parsed trace document (dict form).

    The single entry point behind :func:`load_trace` / :func:`loads_trace`;
    CSV input is first reshaped into the same document structure.
    """
    if not isinstance(document, dict):
        _fail("", f"trace document must be an object, got {type(document).__name__}")
    unknown = sorted(set(document) - {"version", "name", "metadata", "regions"})
    if unknown:
        _fail("", f"unknown top-level field(s): {', '.join(unknown)}")
    version = document.get("version")
    if version != TRACE_FORMAT_VERSION:
        _fail(
            "version",
            f"unsupported trace format version {version!r} "
            f"(this reader supports {TRACE_FORMAT_VERSION})",
        )
    name = document.get("name", "trace")
    if not isinstance(name, str) or not name:
        _fail("name", f"must be a non-empty string, got {name!r}")
    metadata = document.get("metadata", {})
    if not isinstance(metadata, dict):
        _fail("metadata", "must be an object")
    regions_data = document.get("regions")
    if not isinstance(regions_data, list) or not regions_data:
        _fail("regions", "must be a non-empty list of regions")

    seen_uids: Dict[int, str] = {}
    regions: List[TaskRegion] = []
    for region_index, region_data in enumerate(regions_data):
        location = f"regions[{region_index}]"
        if not isinstance(region_data, dict):
            _fail(location, "must be an object")
        unknown = sorted(set(region_data) - {"name", "sequential_us_before", "tasks"})
        if unknown:
            _fail(location, f"unknown region field(s): {', '.join(unknown)}")
        region_name = region_data.get("name", f"region{region_index}")
        if not isinstance(region_name, str) or not region_name:
            _fail(f"{location}.name", "must be a non-empty string")
        sequential = _parse_float(
            region_data.get("sequential_us_before", 0.0),
            f"{location}.sequential_us_before",
        )
        tasks_data = region_data.get("tasks")
        if not isinstance(tasks_data, list) or not tasks_data:
            _fail(f"{location}.tasks", "must be a non-empty list of tasks")
        parsed = [
            _TraceTask(task, f"{location}.tasks[{index}]")
            if isinstance(task, dict)
            else _fail(f"{location}.tasks[{index}]", "must be an object")
            for index, task in enumerate(tasks_data)
        ]
        local_uids = set()
        for task in parsed:
            if task.uid in seen_uids:
                _fail(
                    f"{task.location}.uid",
                    f"duplicate uid {task.uid} (first declared at {seen_uids[task.uid]})",
                )
            seen_uids[task.uid] = task.location
            local_uids.add(task.uid)
        for task in parsed:
            for ref in task.after:
                if ref not in local_uids:
                    where = seen_uids.get(ref)
                    reason = (
                        f"references uid {ref} declared in another region "
                        "(the barrier already orders regions; 'after' edges "
                        "must stay inside one region)"
                        if where
                        else f"references unknown uid {ref} (dangling edge)"
                    )
                    _fail(f"{task.location}.after", reason)
        ordered = _canonical_order(parsed, location)
        definitions = []
        for task in ordered:
            dependences = list(task.accesses)
            for ref in task.after:
                dependences.append(
                    DependenceSpec(TOKEN_BASE + ref * TOKEN_STRIDE, TOKEN_STRIDE, AccessMode.IN)
                )
            if any(other for other in parsed if task.uid in other.after):
                dependences.append(
                    DependenceSpec(
                        TOKEN_BASE + task.uid * TOKEN_STRIDE, TOKEN_STRIDE, AccessMode.OUT
                    )
                )
            definitions.append(
                TaskDefinition(
                    uid=task.uid,
                    name=task.name,
                    kind=task.kind,
                    work_us=task.work_us,
                    dependences=tuple(dependences),
                    memory_sensitivity=task.memory_sensitivity,
                    creation_work_us=task.creation_work_us,
                )
            )
        regions.append(
            TaskRegion(
                tasks=tuple(definitions),
                name=region_name,
                sequential_us_before=sequential,
            )
        )
    return TaskProgram(name=name, regions=tuple(regions), metadata=dict(metadata))


# ----------------------------------------------------------------- CSV flavor
def _csv_to_document(text: str) -> Dict[str, object]:
    """Reshape the CSV flavor into the canonical document structure.

    Errors raised here carry 1-based physical line numbers; everything past
    this reshaping reuses the JSON-path locations of :func:`parse_trace`.
    """
    reader = csv.reader(io.StringIO(text))
    rows = list(reader)
    if not rows:
        _fail("line 1", "empty CSV trace")
    header = tuple(cell.strip() for cell in rows[0])
    if header != CSV_COLUMNS:
        _fail(
            "line 1",
            f"CSV header must be {','.join(CSV_COLUMNS)}, got {','.join(header)}",
        )
    region_order: List[str] = []
    region_tasks: Dict[str, List[Dict[str, object]]] = {}
    region_sequential: Dict[str, float] = {}
    for line_number, row in enumerate(rows[1:], start=2):
        if not row or all(not cell.strip() for cell in row):
            continue
        if len(row) != len(CSV_COLUMNS):
            _fail(f"line {line_number}", f"expected {len(CSV_COLUMNS)} columns, got {len(row)}")
        (region, uid, name, kind, work_us, accesses, after,
         sensitivity, creation, sequential) = (cell.strip() for cell in row)
        if not region:
            _fail(f"line {line_number}", "empty region name")
        try:
            task: Dict[str, object] = {"uid": int(uid), "work_us": float(work_us)}
        except ValueError:
            _fail(f"line {line_number}", f"uid/work_us must be numeric, got {uid!r}/{work_us!r}")
        if name:
            task["name"] = name
        if kind:
            task["kind"] = kind
        access_list = []
        for part in filter(None, (p.strip() for p in accesses.split(";"))):
            pieces = part.split(":")
            if len(pieces) != 3:
                _fail(
                    f"line {line_number}",
                    f"access {part!r} must be mode:address:size (e.g. out:0x1000:4096)",
                )
            mode, address, size = pieces
            try:
                size_value = int(size)
            except ValueError:
                _fail(f"line {line_number}", f"access size must be an integer, got {size!r}")
            access_list.append({"mode": mode, "address": address, "size": size_value})
        if access_list:
            task["accesses"] = access_list
        after_list = []
        for part in filter(None, (p.strip() for p in after.split(";"))):
            try:
                after_list.append(int(part))
            except ValueError:
                _fail(f"line {line_number}", f"'after' uids must be integers, got {part!r}")
        if after_list:
            task["after"] = after_list
        for label, cell in (("memory_sensitivity", sensitivity), ("creation_work_us", creation)):
            if cell:
                try:
                    task[label] = float(cell)
                except ValueError:
                    _fail(f"line {line_number}", f"{label} must be a number, got {cell!r}")
        if region not in region_tasks:
            region_order.append(region)
            region_tasks[region] = []
            if sequential:
                try:
                    region_sequential[region] = float(sequential)
                except ValueError:
                    _fail(
                        f"line {line_number}",
                        f"sequential_us_before must be a number, got {sequential!r}",
                    )
        elif sequential:
            _fail(
                f"line {line_number}",
                "sequential_us_before may only be set on the first row of a region",
            )
        region_tasks[region].append(task)
    if not region_order:
        _fail("line 2", "CSV trace declares no tasks")
    regions: List[Dict[str, object]] = []
    for region in region_order:
        entry: Dict[str, object] = {"name": region, "tasks": region_tasks[region]}
        if region in region_sequential:
            entry["sequential_us_before"] = region_sequential[region]
        regions.append(entry)
    return {"version": TRACE_FORMAT_VERSION, "name": "trace", "regions": regions}


# ------------------------------------------------------------------- file I/O
def loads_trace(text: str, format: str = "json") -> TaskProgram:
    """Import a trace from a string in the given format (``json`` or ``csv``)."""
    if format == "json":
        try:
            document = json.loads(text)
        except json.JSONDecodeError as error:
            _fail(f"line {error.lineno}", f"not valid JSON: {error.msg}")
        return parse_trace(document)
    if format == "csv":
        return parse_trace(_csv_to_document(text))
    _fail("", f"unknown trace format {format!r} (expected 'json' or 'csv')")


def load_trace(path: Union[str, pathlib.Path]) -> TaskProgram:
    """Import a trace file; the format follows the ``.json``/``.csv`` suffix."""
    path = pathlib.Path(path)
    suffix = path.suffix.lower().lstrip(".")
    if suffix not in ("json", "csv"):
        _fail(str(path), f"unknown trace suffix {path.suffix!r} (expected .json or .csv)")
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        _fail(str(path), f"cannot read trace file: {error}")
    return loads_trace(text, format=suffix)


# --------------------------------------------------------------------- export
def _is_token(spec: DependenceSpec) -> bool:
    return spec.address >= TOKEN_BASE


def export_trace(program: TaskProgram) -> Dict[str, object]:
    """The document form of a program (inverse of :func:`parse_trace`).

    Token dependences (lowered ``after`` edges) are re-raised into ``after``
    references; every other dependence is exported as a data access.  JSON-
    unserializable metadata values are dropped (metadata is advisory and not
    part of :func:`program_digest`).
    """
    metadata = {}
    for key, value in program.metadata.items():
        try:
            json.dumps({key: value})
        except (TypeError, ValueError):
            continue
        metadata[key] = value
    regions = []
    for region in program.regions:
        tasks = []
        for task in region.tasks:
            entry: Dict[str, object] = {
                "uid": task.uid,
                "name": task.name,
                "kind": task.kind,
                "work_us": task.work_us,
            }
            accesses = []
            after = []
            for spec in task.dependences:
                if _is_token(spec):
                    if spec.mode is AccessMode.IN:
                        after.append((spec.address - TOKEN_BASE) // TOKEN_STRIDE)
                    continue  # the OUT token side is re-derived on import
                accesses.append(
                    {"address": f"{spec.address:#x}", "size": spec.size, "mode": spec.mode.value}
                )
            if accesses:
                entry["accesses"] = accesses
            if after:
                entry["after"] = after
            if task.memory_sensitivity:
                entry["memory_sensitivity"] = task.memory_sensitivity
            if task.creation_work_us:
                entry["creation_work_us"] = task.creation_work_us
            tasks.append(entry)
        region_entry: Dict[str, object] = {"name": region.name, "tasks": tasks}
        if region.sequential_us_before:
            region_entry["sequential_us_before"] = region.sequential_us_before
        regions.append(region_entry)
    return {
        "version": TRACE_FORMAT_VERSION,
        "name": program.name,
        "metadata": metadata,
        "regions": regions,
    }


def dumps_trace(program: TaskProgram, format: str = "json") -> str:
    """Serialize a program as trace text in the given format."""
    document = export_trace(program)
    if format == "json":
        return json.dumps(document, indent=2, sort_keys=False) + "\n"
    if format == "csv":
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(CSV_COLUMNS)
        for region in document["regions"]:
            for position, task in enumerate(region["tasks"]):
                accesses = ";".join(
                    f"{a['mode']}:{a['address']}:{a['size']}"
                    for a in task.get("accesses", [])
                )
                after = ";".join(str(uid) for uid in task.get("after", []))
                sequential = region.get("sequential_us_before", 0.0)
                writer.writerow(
                    [
                        region["name"],
                        task["uid"],
                        task.get("name", ""),
                        task.get("kind", ""),
                        repr(float(task["work_us"])),
                        accesses,
                        after,
                        repr(float(task["memory_sensitivity"]))
                        if task.get("memory_sensitivity")
                        else "",
                        repr(float(task["creation_work_us"]))
                        if task.get("creation_work_us")
                        else "",
                        repr(float(sequential)) if position == 0 and sequential else "",
                    ]
                )
        return buffer.getvalue()
    _fail("", f"unknown trace format {format!r} (expected 'json' or 'csv')")


def dump_trace(program: TaskProgram, path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write a program as a trace file (format from the ``.json``/``.csv`` suffix)."""
    path = pathlib.Path(path)
    suffix = path.suffix.lower().lstrip(".")
    path.write_text(dumps_trace(program, format=suffix), encoding="utf-8")
    return path


# --------------------------------------------------------------------- digest
def program_digest(program: TaskProgram) -> str:
    """SHA-256 over the structural identity of a program.

    Covers everything simulation output can depend on — region order,
    task creation order, uids, kinds, exact float durations (via ``repr``)
    and every dependence — and nothing advisory (program/region names and
    metadata, which no runtime model reads).  Two programs with equal
    digests are indistinguishable to every runtime model.
    """
    payload = {
        "regions": [
            {
                "sequential_us_before": repr(region.sequential_us_before),
                "tasks": [
                    {
                        "uid": task.uid,
                        "name": task.name,
                        "kind": task.kind,
                        "work_us": repr(task.work_us),
                        "memory_sensitivity": repr(task.memory_sensitivity),
                        "creation_work_us": repr(task.creation_work_us),
                        "deps": [
                            [spec.address, spec.size, spec.mode.value]
                            for spec in task.dependences
                        ],
                    }
                    for task in region.tasks
                ],
            }
            for region in program.regions
        ],
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------- replay workloads
#: Directory of the bundled trace fixtures (shipped with the package so
#: campaign pool workers can rebuild them from the workload name alone).
TRACES_DIR = pathlib.Path(__file__).resolve().parent / "traces"


def bundled_trace_path(stem: str) -> pathlib.Path:
    """Path of one bundled fixture (``diamond`` -> ``traces/diamond.json``)."""
    return TRACES_DIR / f"{stem}.json"


class TraceReplayWorkload(Workload):
    """Replays one bundled trace fixture as a first-class workload.

    The task graph is fixed by the trace, so ``scale`` and ``granularity``
    do not reshape it (the base-class knobs exist so the campaign engine's
    uniform workload interface — and its canonical run keys — apply
    unchanged); ``seed`` only matters to key identity, never to the program.
    """

    #: Stem of the bundled fixture under :data:`TRACES_DIR`.
    trace_stem = "abstract"

    def granularity_options(self) -> Tuple[GranularityOption, ...]:
        return (GranularityOption(1, "native (fixed by the trace)"),)

    def optimal_granularity(self, runtime: str = "software") -> int:
        return 1

    def build_program(self) -> TaskProgram:
        program = load_trace(bundled_trace_path(self.trace_stem))
        metadata = dict(program.metadata)
        metadata.setdefault("workload", self.name)
        metadata.setdefault("trace", self.trace_stem)
        return TaskProgram(name=program.name, regions=program.regions, metadata=metadata)


class DiamondTraceWorkload(TraceReplayWorkload):
    """Four-task diamond expressed purely through ``after`` edges."""

    name = "trace_diamond"
    label = "t.dia"
    trace_stem = "diamond"


class MapReduceTraceWorkload(TraceReplayWorkload):
    """Map/shuffle/reduce pipeline mixing data accesses and ``after`` edges."""

    name = "trace_mapreduce"
    label = "t.mr"
    trace_stem = "mapreduce"


#: Every bundled replay workload, in registration order.
BUNDLED_TRACE_WORKLOADS = (DiamondTraceWorkload, MapReduceTraceWorkload)
