"""Scenario subsystem: trace replay + generative DAG workloads + bundles.

Three modules:

* :mod:`~repro.scenarios.trace` — versioned JSON/CSV task-graph import and
  export, a structural :func:`~repro.scenarios.trace.program_digest`, and
  the bundled trace-replay workloads;
* :mod:`~repro.scenarios.generative` — seeded generative DAG families
  (fan-out, depth, skew, read/write ratio, phases) as real workloads;
* :mod:`~repro.scenarios.registry` — the curated bundles, each a
  first-class ``scenario_<name>`` experiment.

``registry`` is deliberately **not** imported here: the experiments
registry loads it lazily, and an eager import from this package would make
the two registries import each other.  Everything else is re-exported.
"""

from .generative import (
    GENERATIVE_WORKLOADS,
    GenerativeDAGWorkload,
    layered_dag_program,
    register_builtin_workloads,
)
from .trace import (
    BUNDLED_TRACE_WORKLOADS,
    TRACE_FORMAT_VERSION,
    TraceReplayWorkload,
    dump_trace,
    dumps_trace,
    export_trace,
    load_trace,
    loads_trace,
    parse_trace,
    program_digest,
)

__all__ = [
    "BUNDLED_TRACE_WORKLOADS",
    "GENERATIVE_WORKLOADS",
    "GenerativeDAGWorkload",
    "TRACE_FORMAT_VERSION",
    "TraceReplayWorkload",
    "dump_trace",
    "dumps_trace",
    "export_trace",
    "layered_dag_program",
    "load_trace",
    "loads_trace",
    "parse_trace",
    "program_digest",
    "register_builtin_workloads",
]
