"""Seeded generative DAG workload families for stress sweeps.

The paper's nine benchmarks are hand-coded task graphs; these families
generate adversarial graphs far outside that envelope from five structural
knobs — fan-out (``width``), depth (``layers``), dependency skew (how hard
reads concentrate on a few hot blocks), read/write ratio and phase
structure (barriers between phases).  All randomness flows through one
explicit seeded :class:`random.Random` (no module-level state anywhere),
so the same ``(family, scale, granularity, seed)`` tuple always produces
the identical program — across processes, hosts and backends — which is
what lets the campaign engine cache and shard them like paper benchmarks.

:func:`layered_dag_program` is the core generator; the ``gen_*``
:class:`~repro.workloads.base.Workload` subclasses expose curated parameter
points as first-class registry workloads (``granularity`` is the average
task duration in µs, swept like Figure 6), and
:func:`register_builtin_workloads` installs them (plus the bundled trace
fixtures) into :mod:`repro.workloads.registry`.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..runtime.task import (
    AccessMode,
    DependenceSpec,
    TaskDefinition,
    TaskProgram,
    TaskRegion,
)
from ..workloads.base import GranularityOption, Workload
from ..workloads.synthetic import chain_program, fork_join_program

#: Base address of the generative families' data blocks (disjoint from the
#: synthetic generators' 0xA0/0xB0/0xC0 ranges and far below the trace
#: importer's reserved token range).
_GEN_BASE = 0xD0_0000_0000

#: Default distance between consecutive data blocks.
_BLOCK = 4096

#: Block stride that folds distinct blocks onto the same DMU index bits
#: (adversarial aliasing: many addresses, few sets).
ALIAS_STRIDE = 1 << 18


def _skewed_block(rng: random.Random, num_blocks: int, skew: float) -> int:
    """Pick a block index; ``skew`` in [0, 1] concentrates picks near 0.

    ``skew=0`` is uniform; ``skew=1`` raises the uniform draw to the 10th
    power, so almost every pick lands on the first few blocks (the
    reader-storm pattern that floods one SLA/DLA chain).
    """
    draw = rng.random() ** (1.0 + 9.0 * skew)
    return min(num_blocks - 1, int(num_blocks * draw))


def layered_dag_program(
    rng: random.Random,
    *,
    name: str = "layered",
    layers: int = 4,
    width: int = 16,
    fanout: int = 2,
    num_blocks: int = 64,
    skew: float = 0.0,
    write_ratio: float = 0.5,
    phases: int = 1,
    work_us: float = 100.0,
    block_stride: int = _BLOCK,
    jitter: float = 0.25,
    memory_sensitivity: float = 0.0,
) -> TaskProgram:
    """A layered random DAG driven entirely by the caller's seeded ``rng``.

    Each phase is one parallel region of ``layers × width`` tasks created
    layer by layer.  Every task reads ``fanout`` skew-picked blocks and,
    with probability ``write_ratio``, writes one more (OUT or INOUT, an
    even split).  Dependences derive from data accesses in creation order,
    so the graph is acyclic by construction; high ``skew`` piles readers
    onto a few hot blocks, and an ``ALIAS_STRIDE`` ``block_stride`` makes
    distinct blocks collide in the DMU's index function.
    """
    if layers < 1 or width < 1 or num_blocks < 1 or phases < 1:
        raise ValueError("layers, width, num_blocks and phases must be >= 1")
    if fanout < 0 or block_stride < 1:
        raise ValueError("fanout must be >= 0 and block_stride >= 1")
    size = min(_BLOCK, block_stride)
    regions: List[TaskRegion] = []
    uid = 0
    for phase in range(phases):
        tasks: List[TaskDefinition] = []
        for layer in range(layers):
            for index in range(width):
                deps: List[DependenceSpec] = []
                chosen: List[int] = []
                for _ in range(fanout):
                    block = _skewed_block(rng, num_blocks, skew)
                    if block not in chosen:
                        chosen.append(block)
                        deps.append(
                            DependenceSpec(
                                _GEN_BASE + block * block_stride, size, AccessMode.IN
                            )
                        )
                if rng.random() < write_ratio:
                    block = _skewed_block(rng, num_blocks, skew)
                    mode = AccessMode.OUT if rng.random() < 0.5 else AccessMode.INOUT
                    deps.append(
                        DependenceSpec(_GEN_BASE + block * block_stride, size, mode)
                    )
                duration = work_us * (1.0 - jitter + 2.0 * jitter * rng.random())
                tasks.append(
                    TaskDefinition(
                        uid=uid,
                        name=f"p{phase}_l{layer}_{index}",
                        kind="layered",
                        work_us=duration,
                        dependences=tuple(deps),
                        memory_sensitivity=memory_sensitivity,
                    )
                )
                uid += 1
        regions.append(TaskRegion(tasks=tuple(tasks), name=f"{name}.phase{phase}"))
    return TaskProgram(
        name=name,
        regions=tuple(regions),
        metadata={
            "layers": layers,
            "width": width,
            "fanout": fanout,
            "skew": skew,
            "write_ratio": write_ratio,
            "phases": phases,
        },
    )


class GenerativeDAGWorkload(Workload):
    """Base class of the ``gen_*`` families.

    ``granularity`` is the average task duration in µs (the same axis the
    paper's Figure 6 sweeps); structural knobs are class attributes so each
    curated family is a small declarative subclass.  ``scale`` shrinks the
    two structural dimensions with exponent ½ each, so the total task count
    scales roughly linearly with ``scale``.
    """

    #: Average task duration options (µs per task), swept like Figure 6.
    GRANULARITIES = (25, 50, 100, 200, 400)
    _SW_GRANULARITY = 100
    _TDM_GRANULARITY = 50

    # Structural knobs, overridden per family.
    layers = 4
    width = 16
    fanout = 2
    num_blocks = 64
    skew = 0.0
    write_ratio = 0.5
    phases = 1
    block_stride = _BLOCK

    def granularity_options(self) -> Tuple[GranularityOption, ...]:
        return tuple(
            GranularityOption(value, f"{value} us/task") for value in self.GRANULARITIES
        )

    def optimal_granularity(self, runtime: str = "software") -> int:
        if runtime in ("tdm", "task_superscalar"):
            return self._TDM_GRANULARITY
        return self._SW_GRANULARITY

    def _structure(self) -> Dict[str, int]:
        """The scaled structural dimensions of this build."""
        return {
            "layers": self._scaled(self.layers, minimum=1, exponent=0.5),
            "width": self._scaled(self.width, minimum=2, exponent=0.5),
        }

    def build_program(self) -> TaskProgram:
        self._reset()
        structure = self._structure()
        program = layered_dag_program(
            self._rng,
            name=self.name,
            layers=structure["layers"],
            width=structure["width"],
            fanout=self.fanout,
            num_blocks=self.num_blocks,
            skew=self.skew,
            write_ratio=self.write_ratio,
            phases=self.phases,
            work_us=float(self.granularity),
            block_stride=self.block_stride,
            memory_sensitivity=self.memory_sensitivity,
        )
        return self._rewrap(program)

    def _rewrap(self, program: TaskProgram) -> TaskProgram:
        """Attach the standard workload metadata keys to a generated program."""
        metadata = {
            "workload": self.name,
            "granularity": self.granularity,
            "scale": self.scale,
            "seed": self.seed,
        }
        metadata.update(program.metadata)
        return TaskProgram(name=self.name, regions=program.regions, metadata=metadata)


class WideShallowWorkload(GenerativeDAGWorkload):
    """Extreme fan-out, minimal depth: waves of independent tasks.

    Built on :func:`~repro.workloads.synthetic.fork_join_program`, so the
    graph is exactly the paper's fork/join shape blown up to ~96 tasks per
    barrier — the task-creation-rate stress case (Figure 10 territory).
    """

    name = "gen_wide_shallow"
    label = "g.wide"
    waves = 3
    tasks_per_wave = 96

    def build_program(self) -> TaskProgram:
        self._reset()
        program = fork_join_program(
            num_waves=max(1, self.waves),
            tasks_per_wave=self._scaled(self.tasks_per_wave, minimum=2),
            work_us=float(self.granularity),
            name=self.name,
        )
        return self._rewrap(program)


class DeepChainWorkload(GenerativeDAGWorkload):
    """Minimal fan-out, extreme depth: a few very long dependence chains.

    Built on :func:`~repro.workloads.synthetic.chain_program`; exercises
    the wake-up path (every finish readies exactly one successor) with
    almost no exploitable parallelism.
    """

    name = "gen_deep_chain"
    label = "g.deep"
    chains = 6
    chain_length = 48

    def build_program(self) -> TaskProgram:
        self._reset()
        program = chain_program(
            num_chains=self._scaled(self.chains, minimum=2, exponent=0.5),
            chain_length=self._scaled(self.chain_length, minimum=4, exponent=0.5),
            work_us=float(self.granularity),
            name=self.name,
        )
        return self._rewrap(program)


class ReaderStormWorkload(GenerativeDAGWorkload):
    """Heavily skewed reads: almost every task reads the same few blocks.

    Occasional writers to those hot blocks force long reader lists — the
    SLA/DLA chaining stress case the paper's benchmarks never reach.
    """

    name = "gen_reader_storm"
    label = "g.storm"
    layers = 6
    width = 32
    fanout = 3
    num_blocks = 32
    skew = 0.9
    write_ratio = 0.15


class AliasConflictWorkload(GenerativeDAGWorkload):
    """Many distinct addresses folded onto few DMU index sets.

    ``ALIAS_STRIDE`` spacing makes blocks collide in the TAT/DAT index
    function, stressing associativity and the alias-table path.
    """

    name = "gen_alias_conflict"
    label = "g.alias"
    layers = 5
    width = 24
    fanout = 2
    num_blocks = 48
    skew = 0.3
    write_ratio = 0.5
    block_stride = ALIAS_STRIDE


class PhasedWorkload(GenerativeDAGWorkload):
    """Four barrier-separated phases of mixed-skew layered DAGs.

    Exercises region teardown/warm-up behavior: every barrier drains the
    DMU and the next phase refills it from scratch.
    """

    name = "gen_phased"
    label = "g.phase"
    layers = 4
    width = 24
    fanout = 2
    num_blocks = 40
    skew = 0.5
    write_ratio = 0.4
    phases = 4


#: Every generative family, in registration order.
GENERATIVE_WORKLOADS = (
    WideShallowWorkload,
    DeepChainWorkload,
    ReaderStormWorkload,
    AliasConflictWorkload,
    PhasedWorkload,
)


def register_builtin_workloads() -> None:
    """Install the scenario workloads into :mod:`repro.workloads.registry`.

    Idempotent (``replace=True``) because both the scenario registry and
    the workload registry's lazy ``gen_*``/``trace_*`` hook call it — and
    campaign pool workers may hit the hook again in a fresh process.
    """
    from ..workloads.registry import register_workload
    from .trace import BUNDLED_TRACE_WORKLOADS

    for cls in GENERATIVE_WORKLOADS + BUNDLED_TRACE_WORKLOADS:
        register_workload(cls.name, cls, replace=True)
