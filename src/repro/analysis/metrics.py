"""Scalar metrics used throughout the evaluation.

The paper reports averages as geometric means ("The geometric mean of the
speedups is also reported"), so :func:`geometric_mean` is the aggregation
used by every experiment harness.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values."""
    values = list(values)
    if not values:
        raise ValueError("geometric_mean of an empty sequence")
    if any(value <= 0 for value in values):
        raise ValueError("geometric_mean requires strictly positive values")
    return math.exp(sum(math.log(value) for value in values) / len(values))


def speedup(baseline_time: float, new_time: float) -> float:
    """Speedup of ``new_time`` relative to ``baseline_time`` (>1 is faster)."""
    if new_time <= 0:
        raise ValueError("new_time must be positive")
    return baseline_time / new_time


def normalize(values: Sequence[float], reference: float) -> list[float]:
    """Divide every value by ``reference``."""
    if reference == 0:
        raise ValueError("cannot normalize to zero")
    return [value / reference for value in values]


def relative_change(baseline: float, new: float) -> float:
    """Relative change ``(new - baseline) / baseline``; negative means reduction."""
    if baseline == 0:
        raise ValueError("baseline is zero")
    return (new - baseline) / baseline


def percentage_improvement(baseline: float, new: float) -> float:
    """Percentage reduction of ``new`` with respect to ``baseline``.

    Positive values mean ``new`` is smaller (better for time/energy metrics).
    """
    return -100.0 * relative_change(baseline, new)
