"""Post-simulation validation of dependence and barrier semantics.

After every simulation (unless disabled in the configuration) the recorded
per-task timestamps are checked against a *reference* dependence graph built
directly from the workload definitions, independently of whichever runtime
model produced the schedule:

* every task ran exactly once, with consistent created/ready/start/finish
  timestamps,
* for every edge of the maximal task dependence graph, the successor started
  no earlier than its predecessor finished,
* tasks of a later parallel region started only after every task of the
  previous region finished (barrier semantics).

This is the safety net that catches bugs in runtime/scheduler/DMU models: a
policy that "wins" by violating dependences fails validation instead of
producing a bogus speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import ValidationError
from ..runtime.task import TaskInstance, TaskProgram


@dataclass(frozen=True)
class ReferenceGraph:
    """The maximal dependence graph of a program (edges by task uid)."""

    edges: Tuple[Tuple[int, int], ...]
    region_of: Dict[int, int]

    @classmethod
    def from_program(cls, program: TaskProgram) -> "ReferenceGraph":
        """Build the maximal dependence graph straight from the definitions.

        Mirrors :meth:`DependenceTracker.register_task` (last writer and
        ordered reader lists per address) but operates on task uids directly:
        the graph runs once per simulation as a safety net, and
        materializing full :class:`TaskInstance` objects for it was pure
        overhead.  ``tests/test_analysis.py`` pins the equivalence against a
        tracker-built graph.
        """
        last_writer: Dict[int, int] = {}
        readers: Dict[int, List[int]] = {}
        edges: List[Tuple[int, int]] = []
        seen: set = set()
        region_of: Dict[int, int] = {}
        for region_index, region in enumerate(program.regions):
            for definition in region.tasks:
                uid = definition.uid
                region_of[uid] = region_index
                for dependence in definition.dependences:
                    address = dependence.address
                    writer = last_writer.get(address)
                    if writer is not None and writer != uid:
                        edge = (writer, uid)
                        if edge not in seen:
                            seen.add(edge)
                            edges.append(edge)
                    if dependence.is_output:
                        for reader in readers.get(address, ()):
                            if reader != uid:
                                edge = (reader, uid)
                                if edge not in seen:
                                    seen.add(edge)
                                    edges.append(edge)
                        readers[address] = []
                        last_writer[address] = uid
                    else:
                        reader_list = readers.setdefault(address, [])
                        if uid not in reader_list:
                            reader_list.append(uid)
        # Duplicate edges (the same pair reachable through several addresses)
        # are dropped: validation only checks each edge's timestamps, so the
        # dedup changes nothing semantically and shrinks the per-simulation
        # verification loop.
        return cls(edges=tuple(edges), region_of=region_of)


def validate_execution(program: TaskProgram, instances: Sequence[TaskInstance]) -> None:
    """Raise :class:`ValidationError` if the recorded schedule is inconsistent."""
    by_uid: Dict[int, TaskInstance] = {}
    for instance in instances:
        if instance.uid in by_uid:
            raise ValidationError(f"task uid {instance.uid} was instantiated twice")
        by_uid[instance.uid] = instance

    expected_uids = {task.uid for task in program.all_tasks()}
    missing = expected_uids - set(by_uid)
    if missing:
        raise ValidationError(f"{len(missing)} tasks were never created: {sorted(missing)[:5]}")

    for instance in by_uid.values():
        if not instance.is_finished:
            raise ValidationError(f"task {instance.name!r} never finished")
        if instance.start_cycle is None or instance.finish_cycle is None:
            raise ValidationError(f"task {instance.name!r} has incomplete timestamps")
        if instance.start_cycle < instance.created_cycle:
            raise ValidationError(f"task {instance.name!r} started before it was created")
        if instance.finish_cycle < instance.start_cycle:
            raise ValidationError(f"task {instance.name!r} finished before it started")

    # Programs are immutable and shared across simulations by the campaign
    # engine's program cache, so the reference graph is memoized on the
    # program itself (one build per program instead of one per simulation).
    reference = getattr(program, "_reference_graph", None)
    if reference is None:
        reference = ReferenceGraph.from_program(program)
        object.__setattr__(program, "_reference_graph", reference)
    for pred_uid, succ_uid in reference.edges:
        pred = by_uid[pred_uid]
        succ = by_uid[succ_uid]
        if succ.start_cycle < pred.finish_cycle:
            raise ValidationError(
                f"dependence violated: {succ.name!r} (start={succ.start_cycle}) ran before "
                f"{pred.name!r} finished (finish={pred.finish_cycle})"
            )

    # Barrier semantics between consecutive regions.
    region_finish: Dict[int, int] = {}
    region_start: Dict[int, int] = {}
    for instance in by_uid.values():
        region = reference.region_of[instance.uid]
        region_finish[region] = max(region_finish.get(region, 0), instance.finish_cycle or 0)
        start = instance.start_cycle or 0
        region_start[region] = min(region_start.get(region, start), start)
    for region_index in sorted(region_start):
        if region_index == 0:
            continue
        previous_finish = region_finish.get(region_index - 1)
        if previous_finish is not None and region_start[region_index] < previous_finish:
            raise ValidationError(
                f"barrier violated: region {region_index} started at "
                f"{region_start[region_index]} before region {region_index - 1} "
                f"finished at {previous_finish}"
            )
