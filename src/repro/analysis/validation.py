"""Post-simulation validation of dependence and barrier semantics.

After every simulation (unless disabled in the configuration) the recorded
per-task timestamps are checked against a *reference* dependence graph built
directly from the workload definitions, independently of whichever runtime
model produced the schedule:

* every task ran exactly once, with consistent created/ready/start/finish
  timestamps,
* for every edge of the maximal task dependence graph, the successor started
  no earlier than its predecessor finished,
* tasks of a later parallel region started only after every task of the
  previous region finished (barrier semantics).

This is the safety net that catches bugs in runtime/scheduler/DMU models: a
policy that "wins" by violating dependences fails validation instead of
producing a bogus speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import ValidationError
from ..runtime.task import TaskInstance, TaskInstanceFactory, TaskProgram
from ..runtime.tracker import DependenceTracker


@dataclass(frozen=True)
class ReferenceGraph:
    """The maximal dependence graph of a program (edges by task uid)."""

    edges: Tuple[Tuple[int, int], ...]
    region_of: Dict[int, int]

    @classmethod
    def from_program(cls, program: TaskProgram) -> "ReferenceGraph":
        factory = TaskInstanceFactory()
        tracker = DependenceTracker()
        instances: List[TaskInstance] = []
        region_of: Dict[int, int] = {}
        for region_index, region in enumerate(program.regions):
            for definition in region.tasks:
                instance = factory.create(definition, region_index)
                tracker.register_task(instance)
                instances.append(instance)
                region_of[definition.uid] = region_index
        edges: List[Tuple[int, int]] = []
        for instance in instances:
            for successor in instance.successors:
                edges.append((instance.uid, successor.uid))
        return cls(edges=tuple(edges), region_of=region_of)


def validate_execution(program: TaskProgram, instances: Sequence[TaskInstance]) -> None:
    """Raise :class:`ValidationError` if the recorded schedule is inconsistent."""
    by_uid: Dict[int, TaskInstance] = {}
    for instance in instances:
        if instance.uid in by_uid:
            raise ValidationError(f"task uid {instance.uid} was instantiated twice")
        by_uid[instance.uid] = instance

    expected_uids = {task.uid for task in program.all_tasks()}
    missing = expected_uids - set(by_uid)
    if missing:
        raise ValidationError(f"{len(missing)} tasks were never created: {sorted(missing)[:5]}")

    for instance in by_uid.values():
        if not instance.is_finished:
            raise ValidationError(f"task {instance.name!r} never finished")
        if instance.start_cycle is None or instance.finish_cycle is None:
            raise ValidationError(f"task {instance.name!r} has incomplete timestamps")
        if instance.start_cycle < instance.created_cycle:
            raise ValidationError(f"task {instance.name!r} started before it was created")
        if instance.finish_cycle < instance.start_cycle:
            raise ValidationError(f"task {instance.name!r} finished before it started")

    reference = ReferenceGraph.from_program(program)
    for pred_uid, succ_uid in reference.edges:
        pred = by_uid[pred_uid]
        succ = by_uid[succ_uid]
        if succ.start_cycle < pred.finish_cycle:
            raise ValidationError(
                f"dependence violated: {succ.name!r} (start={succ.start_cycle}) ran before "
                f"{pred.name!r} finished (finish={pred.finish_cycle})"
            )

    # Barrier semantics between consecutive regions.
    region_finish: Dict[int, int] = {}
    region_start: Dict[int, int] = {}
    for instance in by_uid.values():
        region = reference.region_of[instance.uid]
        region_finish[region] = max(region_finish.get(region, 0), instance.finish_cycle or 0)
        start = instance.start_cycle or 0
        region_start[region] = min(region_start.get(region, start), start)
    for region_index in sorted(region_start):
        if region_index == 0:
            continue
        previous_finish = region_finish.get(region_index - 1)
        if previous_finish is not None and region_start[region_index] < previous_finish:
            raise ValidationError(
                f"barrier violated: region {region_index} started at "
                f"{region_start[region_index]} before region {region_index - 1} "
                f"finished at {previous_finish}"
            )
