"""Task-dependence-graph analysis of a workload program.

These helpers build the *maximal* task dependence graph of a program — the
graph obtained by registering every task in creation order without retiring
any — and compute properties used by the experiments and documentation:
the dependence edges, the critical path length and an upper bound on the
parallelism available at the chosen granularity.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..runtime.task import TaskInstanceFactory, TaskProgram
from ..runtime.tracker import DependenceTracker


def task_graph_edges(program: TaskProgram) -> List[Tuple[int, int]]:
    """Dependence edges of ``program`` as (predecessor uid, successor uid) pairs."""
    factory = TaskInstanceFactory()
    tracker = DependenceTracker()
    instances = []
    for region_index, region in enumerate(program.regions):
        for definition in region.tasks:
            instance = factory.create(definition, region_index)
            tracker.register_task(instance)
            instances.append(instance)
    edges: List[Tuple[int, int]] = []
    for instance in instances:
        for successor in instance.successors:
            edges.append((instance.uid, successor.uid))
    return edges


def critical_path_us(program: TaskProgram) -> float:
    """Length (in microseconds of task work) of the longest dependence chain."""
    work: Dict[int, float] = {task.uid: task.work_us for task in program.all_tasks()}
    successors: Dict[int, Set[int]] = {uid: set() for uid in work}
    predecessors: Dict[int, Set[int]] = {uid: set() for uid in work}
    for pred, succ in task_graph_edges(program):
        successors[pred].add(succ)
        predecessors[succ].add(pred)

    longest: Dict[int, float] = {}

    order = _topological_order(work, predecessors)
    for uid in order:
        incoming = [longest[p] for p in predecessors[uid] if p in longest]
        longest[uid] = work[uid] + (max(incoming) if incoming else 0.0)
    region_paths = []
    start = 0
    for region in program.regions:
        uids = [task.uid for task in region.tasks]
        if uids:
            region_paths.append(max(longest[uid] for uid in uids))
        start += len(uids)
    return sum(region_paths)


def max_parallelism(program: TaskProgram) -> float:
    """Upper bound on parallelism: total work divided by the critical path."""
    critical = critical_path_us(program)
    if critical == 0:
        return 0.0
    return program.total_work_us / critical


def _topological_order(
    work: Dict[int, float], predecessors: Dict[int, Set[int]]
) -> List[int]:
    remaining_preds = {uid: set(preds) for uid, preds in predecessors.items()}
    ready = sorted(uid for uid, preds in remaining_preds.items() if not preds)
    order: List[int] = []
    dependents: Dict[int, List[int]] = {uid: [] for uid in work}
    for uid, preds in predecessors.items():
        for pred in preds:
            dependents[pred].append(uid)
    index = 0
    ready_set = list(ready)
    while index < len(ready_set):
        uid = ready_set[index]
        index += 1
        order.append(uid)
        for dependent in dependents[uid]:
            remaining_preds[dependent].discard(uid)
            if not remaining_preds[dependent]:
                ready_set.append(dependent)
    if len(order) != len(work):
        raise ValueError("task graph contains a dependence cycle")
    return order
