"""Analysis utilities: metrics, graph analysis and execution validation."""

from .metrics import geometric_mean, normalize, relative_change, speedup
from .validation import ReferenceGraph, validate_execution
from .graph import critical_path_us, max_parallelism, task_graph_edges

__all__ = [
    "geometric_mean",
    "normalize",
    "relative_change",
    "speedup",
    "ReferenceGraph",
    "validate_execution",
    "critical_path_us",
    "max_parallelism",
    "task_graph_edges",
]
