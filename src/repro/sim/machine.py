"""The simulated chip: engine, threads, runtime system, DMU, power model.

:class:`Machine` wires every substrate together for one simulation of one
:class:`~repro.runtime.task.TaskProgram` under one
:class:`~repro.config.SimulationConfig`, runs the discrete-event engine to
completion and packages the outcome into a :class:`SimulationResult`.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from ..config import SimulationConfig
from ..core.stats import DMUStats
from ..core.storage import DMUStorageModel
from ..errors import SimulationError
from ..power.energy import ChipEnergyModel, EnergyReport
from ..units import cycles_to_seconds, cycles_to_us, us_to_cycles

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a circular import:
    # the runtime package imports the simulation kernel at module load time)
    from ..runtime.task import TaskInstance, TaskProgram
from .engine import Engine
from .locality import LocalityModel
from .noc import NocModel
from .thread import RegionState, build_threads
from .timeline import Phase, Timeline, TimelineRecorder


@dataclass
class SimulationResult:
    """Everything measured in one simulation run."""

    program_name: str
    runtime_name: str
    scheduler_name: str
    config: SimulationConfig
    total_cycles: int
    timeline: Timeline
    energy: EnergyReport
    runtime_stats: Dict[str, object]
    dmu_stats: Optional[DMUStats] = None
    dat_average_occupied_sets: float = 0.0
    locality_hit_fraction: float = 0.0
    task_instances: List["TaskInstance"] = field(default_factory=list)
    #: Set on results restored from the on-disk campaign cache, which does not
    #: serialize per-task instances; live runs leave it None and count
    #: ``task_instances`` directly.
    finished_task_count: Optional[int] = None

    # ------------------------------------------------------------------ time
    @property
    def seconds(self) -> float:
        return cycles_to_seconds(self.total_cycles, self.config.chip.clock_ghz)

    @property
    def microseconds(self) -> float:
        return cycles_to_us(self.total_cycles, self.config.chip.clock_ghz)

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Speedup of this run relative to ``baseline`` (>1 means faster)."""
        if self.total_cycles == 0:
            raise SimulationError("cannot compute speedup of a zero-cycle run")
        return baseline.total_cycles / self.total_cycles

    # ------------------------------------------------------------------ energy
    @property
    def edp(self) -> float:
        return self.energy.edp

    def normalized_edp(self, baseline: "SimulationResult") -> float:
        """EDP relative to ``baseline`` (<1 means more efficient)."""
        return self.edp / baseline.edp

    # ------------------------------------------------------------------ phases
    def master_breakdown(self) -> Dict[Phase, float]:
        return self.timeline.master_breakdown()

    def worker_breakdown(self) -> Dict[Phase, float]:
        return self.timeline.worker_breakdown()

    @property
    def master_creation_fraction(self) -> float:
        """Fraction of the wall-clock time the master spends creating tasks.

        This is the metric of Figure 10 of the paper (time spent in task
        creation and dependence management by the master thread).
        """
        if self.total_cycles == 0:
            return 0.0
        master = self.timeline.threads[0]
        return master.totals[Phase.DEPS] / self.total_cycles

    @property
    def idle_fraction(self) -> float:
        """Fraction of total thread time spent idle (paper Section V-D)."""
        totals = self.timeline.totals()
        grand = sum(totals.values())
        return totals[Phase.IDLE] / grand if grand else 0.0

    @property
    def num_tasks_executed(self) -> int:
        if self.finished_task_count is not None:
            return self.finished_task_count
        return len([t for t in self.task_instances if t.is_finished])

    # ------------------------------------------------------------------ serialization
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form for the on-disk campaign cache.

        Everything the experiment harnesses consume round-trips exactly
        (cycle counts and energies are plain ints/floats, so JSON preserves
        them bit-for-bit).  Two deliberately lossy spots: timeline intervals
        and per-task instances are dropped (see :meth:`Timeline.to_dict`);
        only the finished-task count survives.
        """
        return {
            "program_name": self.program_name,
            "runtime_name": self.runtime_name,
            "scheduler_name": self.scheduler_name,
            "config": self.config.to_dict(),
            "total_cycles": self.total_cycles,
            "timeline": self.timeline.to_dict(),
            "energy": self.energy.to_dict(),
            "runtime_stats": self.runtime_stats,
            "dmu_stats": self.dmu_stats.as_dict() if self.dmu_stats is not None else None,
            "dat_average_occupied_sets": self.dat_average_occupied_sets,
            "locality_hit_fraction": self.locality_hit_fraction,
            "finished_task_count": self.num_tasks_executed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output (cache deserialization)."""
        dmu_stats = data.get("dmu_stats")
        return cls(
            program_name=data["program_name"],
            runtime_name=data["runtime_name"],
            scheduler_name=data["scheduler_name"],
            config=SimulationConfig.from_dict(data["config"]),
            total_cycles=int(data["total_cycles"]),
            timeline=Timeline.from_dict(data["timeline"]),
            energy=EnergyReport.from_dict(data["energy"]),
            runtime_stats=dict(data.get("runtime_stats") or {}),
            dmu_stats=DMUStats.from_dict(dmu_stats) if dmu_stats is not None else None,
            dat_average_occupied_sets=float(data.get("dat_average_occupied_sets", 0.0)),
            locality_hit_fraction=float(data.get("locality_hit_fraction", 0.0)),
            finished_task_count=data.get("finished_task_count"),
        )


class Machine:
    """One simulated 32-core chip executing one task program."""

    def __init__(self, program: "TaskProgram", config: SimulationConfig) -> None:
        from ..runtime.factory import create_runtime

        config.validate()
        self.program = program
        self.config = config
        self.clock_ghz = config.chip.clock_ghz
        self.engine = Engine()
        self.recorder = TimelineRecorder(
            config.chip.num_cores, record_intervals=config.record_timeline
        )
        self.noc = NocModel(num_cores=config.chip.num_cores)
        self.locality = LocalityModel(config.chip.num_cores, config.locality)
        self.runtime = create_runtime(config, self.engine, self.noc)
        self.region_states = [
            RegionState(self.engine, region, index)
            for index, region in enumerate(program.regions)
        ]
        self.threads = build_threads(self)

    # ------------------------------------------------------------------ helpers
    def execution_cycles(self, core_id: int, task: "TaskInstance") -> int:
        """Execution latency of ``task`` on ``core_id`` (locality adjusted)."""
        base = us_to_cycles(task.work_us, self.clock_ghz)
        return self.locality.execution_cycles(
            core_id,
            base,
            task.definition.all_addresses,
            task.definition.memory_sensitivity,
        )

    # ------------------------------------------------------------------ run
    def run(self) -> SimulationResult:
        """Run the simulation to completion and collect the results."""
        for thread in self.threads:
            thread.process = self.engine.process(thread.run(), name=f"thread{thread.thread_id}")
        # The event loop allocates heap entries and ready-pool records at a
        # rate that keeps the cyclic collector's generation-0 threshold
        # permanently saturated; none of those objects form cycles, so the
        # scans are pure overhead.  Suspend collection for the duration of
        # the run (restoring the caller's setting afterwards).
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            final_cycle = self.engine.run_all(self.config.max_cycles)
        finally:
            if gc_was_enabled:
                gc.enable()

        self.runtime.assert_drained()
        timeline = self.recorder.finalize(final_cycle)

        dmu = self.runtime.dmu
        dmu_stats = dmu.stats if dmu is not None else None
        storage = DMUStorageModel(self.config.dmu) if dmu is not None else None
        energy_model = ChipEnergyModel(self.config.chip, storage)
        energy = energy_model.report(timeline, dmu_stats)

        result = SimulationResult(
            program_name=self.program.name,
            runtime_name=self.runtime.name,
            scheduler_name=(
                self.config.scheduler if self.runtime.honors_scheduler else self.runtime.name
            ),
            config=self.config,
            total_cycles=final_cycle,
            timeline=timeline,
            energy=energy,
            runtime_stats=self.runtime.stats(),
            dmu_stats=dmu_stats,
            dat_average_occupied_sets=(dmu.dat.average_occupied_sets() if dmu else 0.0),
            locality_hit_fraction=self.locality.average_hit_fraction(),
            task_instances=list(self.runtime.all_instances),
        )

        if self.config.validate_execution:
            from ..analysis.validation import validate_execution

            validate_execution(self.program, result.task_instances)
        return result


def run_simulation(program: "TaskProgram", config: SimulationConfig) -> SimulationResult:
    """Convenience wrapper: build a :class:`Machine` and run it."""
    return Machine(program, config).run()
