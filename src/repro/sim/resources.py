"""Synchronization resources for the discrete-event kernel.

The only resource the runtime models need is a FIFO mutual-exclusion lock:
the software runtime serializes its task-dependence-graph and ready-pool
updates behind a single lock (as Nanos++ does for its dependence domain), and
the DMU processes ISA instructions one at a time, which is modeled with the
same primitive.

The lock records contention statistics (total wait cycles, number of
acquisitions, busy cycles) that feed the runtime-overhead analysis.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Optional

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Engine, Process


class Lock:
    """FIFO mutual exclusion lock with contention statistics."""

    __slots__ = ("engine", "name", "_holder", "_waiters", "_acquired_at",
                 "acquisitions", "total_wait_cycles", "total_hold_cycles",
                 "max_queue_length")

    def __init__(self, engine: "Engine", name: str = "lock") -> None:
        self.engine = engine
        self.name = name
        self._holder: Optional["Process"] = None
        self._waiters: Deque[tuple["Process", int]] = deque()
        self._acquired_at = 0
        # statistics
        self.acquisitions = 0
        self.total_wait_cycles = 0
        self.total_hold_cycles = 0
        self.max_queue_length = 0

    @property
    def locked(self) -> bool:
        """True while some process holds the lock."""
        return self._holder is not None

    @property
    def queue_length(self) -> int:
        """Number of processes currently waiting for the lock."""
        return len(self._waiters)

    def _enqueue(self, process: "Process") -> None:
        """Called on a yielded ``Acquire(self)`` (the engine's dispatch
        inlines the uncontended branch of this method — keep in sync; the
        contended hand-off lives in :meth:`release`)."""
        if self._holder is None:
            engine = self.engine
            self._holder = process
            self._acquired_at = engine.now
            self.acquisitions += 1
            engine._wake(process, None)
        else:
            waiters = self._waiters
            waiters.append((process, self.engine.now))
            if len(waiters) > self.max_queue_length:
                self.max_queue_length = len(waiters)

    def release(self, process: "Process") -> None:
        """Release the lock; must be called by the current holder."""
        if self._holder is not process:
            holder = self._holder.name if self._holder else None
            raise SimulationError(
                f"lock {self.name!r} released by {process.name!r} but held by {holder!r}"
            )
        engine = self.engine
        now = engine.now
        self.total_hold_cycles += now - self._acquired_at
        waiters = self._waiters
        if waiters:
            # Hand-off grant, inlined (release runs twice per ISA
            # instruction under contention): same bookkeeping as _grant.
            waiter, enqueued_at = waiters.popleft()
            self._holder = waiter
            self._acquired_at = now
            self.acquisitions += 1
            self.total_wait_cycles += now - enqueued_at
            seq = engine._seq
            engine._seq = seq + 1
            engine._ready.append((seq, waiter, None))
        else:
            self._holder = None

    def average_wait_cycles(self) -> float:
        """Mean cycles a holder waited before acquiring (0 when uncontended)."""
        if self.acquisitions == 0:
            return 0.0
        return self.total_wait_cycles / self.acquisitions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        holder = self._holder.name if self._holder else None
        return f"Lock({self.name!r}, holder={holder!r}, waiters={len(self._waiters)})"
