"""Commands and events understood by the discrete-event kernel.

Simulation processes are plain Python generators.  They communicate with the
engine by yielding *command* objects:

``Timeout(cycles)``
    Suspend the process for ``cycles`` clock cycles.

``Acquire(lock)``
    Suspend until the FIFO lock is granted to this process.

``WaitEvent(event)``
    Suspend until ``event`` is triggered; the triggered value is returned by
    the ``yield`` expression.

The :class:`SimEvent` class is the one-shot broadcast event used for
completion notifications (task finished, structure entry freed, barrier
reached, ...).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .engine import Engine, Process
    from .resources import Lock


class Command:
    """Base class of every object a simulation process may yield."""

    __slots__ = ()


class Timeout(Command):
    """Suspend the yielding process for a fixed number of cycles.

    Fractional cycle counts (cost models may produce floats) are rounded
    half-up, matching :meth:`repro.sim.engine.Engine.schedule` — truncation
    would silently shave up to a cycle off every event.
    """

    __slots__ = ("cycles",)

    def __init__(self, cycles: int | float) -> None:
        rounded = cycles if isinstance(cycles, int) else math.floor(cycles + 0.5)
        if rounded < 0:
            raise ValueError(f"Timeout cycles must be >= 0, got {cycles}")
        self.cycles = rounded

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeout({self.cycles})"


class Acquire(Command):
    """Suspend the yielding process until the lock is granted to it."""

    __slots__ = ("lock",)

    def __init__(self, lock: "Lock") -> None:
        self.lock = lock

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Acquire({self.lock.name!r})"


class WaitEvent(Command):
    """Suspend the yielding process until the event is triggered."""

    __slots__ = ("event",)

    def __init__(self, event: "SimEvent") -> None:
        self.event = event

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WaitEvent({self.event.name!r})"


class _WaiterBatch:
    """One ready-queue entry that resumes a whole waiter list in order.

    Triggering an event with ``n`` waiters used to append ``n`` entries to
    the engine's ready deque — the ready-pool wake-up storm: every push
    woke every idle worker through its own queue entry.  A batch entry
    claims a single sequence number (the position the *first* waiter would
    have held) and resumes the waiters back to back when the run loop
    reaches it.  The observable order is unchanged: the waiters run in
    registration order, before anything enqueued after the trigger, exactly
    as the per-waiter entries did.
    """

    __slots__ = ("waiters",)

    def __init__(self, waiters: list["Process"]) -> None:
        self.waiters = waiters

    def resume(self, value: Any) -> None:
        for process in self.waiters:
            process.resume(value)


class SimEvent:
    """One-shot broadcast event.

    Processes wait on the event by yielding ``WaitEvent(event)``.  Triggering
    the event resumes every waiter (in registration order) with the trigger
    value.  Waiting on an already-triggered event resumes immediately, which
    makes the primitive safe against wake-up/wait races.
    """

    __slots__ = ("engine", "name", "triggered", "value", "_waiters", "_callbacks")

    def __init__(self, engine: "Engine", name: str = "event") -> None:
        self.engine = engine
        self.name = name
        self.triggered = False
        self.value: Any = None
        self._waiters: list["Process"] = []
        self._callbacks: list[Callable[[Any], None]] = []

    def add_waiter(self, process: "Process") -> None:
        """Register a process to be resumed on trigger (engine internal)."""
        if self.triggered:
            self.engine._wake(process, self.value)
        else:
            self._waiters.append(process)

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(value)`` when the event triggers (or now if it has)."""
        if self.triggered:
            callback(self.value)
        else:
            self._callbacks.append(callback)

    def trigger(self, value: Any = None) -> None:
        """Fire the event, resuming every waiter at the current time.

        A single waiter is queued directly on the engine's zero-delay ready
        deque; several waiters are queued as **one** batched drain entry
        (:class:`_WaiterBatch`) that resumes them in registration order.
        Either way triggering never allocates closures or touches the timed
        queues, and the batch preserves the per-waiter order exactly.
        """
        if self.triggered:
            return
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        callbacks, self._callbacks = self._callbacks, []
        if waiters:
            engine = self.engine
            seq = engine._seq
            engine._seq = seq + 1
            if len(waiters) == 1:
                engine._ready.append((seq, waiters[0], value))
            else:
                engine._ready.append((seq, _WaiterBatch(waiters), value))
        for callback in callbacks:
            callback(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else f"{len(self._waiters)} waiters"
        return f"SimEvent({self.name!r}, {state})"


class NotificationEvent:
    """A re-arming notification channel built on top of :class:`SimEvent`.

    Waiters obtain the current :class:`SimEvent` via :meth:`wait_target`; a
    call to :meth:`notify_all` triggers the current event, and the next
    :meth:`wait_target` call re-arms the channel.  This models "space was
    freed in a hardware structure" and "a task was pushed to the ready pool"
    notifications, where the condition must be re-checked after every
    wake-up.

    The replacement event is allocated *lazily* by :meth:`wait_target`, not
    eagerly by :meth:`notify_all`: runtimes notify on every ready-pool push
    and task finish, and with busy workers (nobody re-waiting between
    notifications) the eager re-arm allocated a fresh :class:`SimEvent` per
    notification that nothing ever looked at.  The observable protocol is
    unchanged — a target captured before a notification is triggered by it,
    and waiting on a triggered target resumes immediately.
    """

    __slots__ = ("engine", "name", "_current")

    def __init__(self, engine: "Engine", name: str = "notify") -> None:
        self.engine = engine
        self.name = name
        self._current: "SimEvent | None" = None

    def wait_target(self) -> SimEvent:
        """The event a process should wait on for the *next* notification."""
        current = self._current
        if current is None or current.triggered:
            current = SimEvent(self.engine, self.name)
            self._current = current
        return current

    def notify_all(self, value: Any = None) -> None:
        """Wake every process currently waiting; the channel re-arms on demand."""
        event = self._current
        if event is not None and not event.triggered:
            event.trigger(value)
