"""Per-thread phase accounting.

Figure 2 and Figure 10 of the paper break the execution time of every thread
into four categories:

* ``DEPS``  — task creation and dependence management (including finish-time
  dependence bookkeeping),
* ``SCHED`` — selecting a ready task from the pool,
* ``EXEC``  — executing task code,
* ``IDLE``  — waiting because no ready task exists (or outside the parallel
  region).

The :class:`TimelineRecorder` collects (phase, start, end) intervals for each
thread; :class:`Timeline` aggregates them into per-thread and per-group
breakdowns and drives the energy model.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Mapping, Sequence


class Phase(str, Enum):
    """Execution phases tracked for every simulated thread."""

    DEPS = "DEPS"
    SCHED = "SCHED"
    EXEC = "EXEC"
    IDLE = "IDLE"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Interval:
    """A contiguous span of time a thread spent in one phase."""

    phase: Phase
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start


class ThreadTimeline:
    """Phase accounting for a single thread.

    The default is *totals-only*: :meth:`begin`/:meth:`end` accumulate per-
    phase cycle counts and no :class:`Interval` objects are materialized
    (nothing downstream of a finished experiment consumes them, and
    :meth:`Timeline.to_dict` never serialized them).  Pass
    ``record_intervals=True`` (wired to ``SimulationConfig.record_timeline``)
    to additionally keep the interval trace for visualization workloads.
    """

    __slots__ = ("thread_id", "record_intervals", "intervals", "totals",
                 "_current_phase", "_current_start")

    def __init__(self, thread_id: int, record_intervals: bool = False) -> None:
        self.thread_id = thread_id
        self.record_intervals = record_intervals
        self.intervals: List[Interval] = []
        self.totals: Dict[Phase, int] = {phase: 0 for phase in Phase}
        self._current_phase: Phase | None = None
        self._current_start = 0

    def begin(self, phase: Phase, now: int) -> None:
        """Enter ``phase`` at time ``now``, closing any open phase.

        Re-entering the phase that is already open is a no-op: the open span
        simply continues, so adjacent same-phase intervals are merged instead
        of churning bookkeeping (totals are unaffected either way).
        """
        current = self._current_phase
        if current is phase:
            return
        if current is not None:
            duration = now - self._current_start
            if duration:
                if duration < 0:
                    raise ValueError("timeline interval ends before it starts")
                self.totals[current] += duration
                if self.record_intervals:
                    self.intervals.append(Interval(current, self._current_start, now))
        self._current_phase = phase
        self._current_start = now

    def end(self, now: int) -> None:
        """Close the currently open phase at time ``now``."""
        current = self._current_phase
        if current is None:
            return
        duration = now - self._current_start
        if duration < 0:
            raise ValueError("timeline interval ends before it starts")
        self.totals[current] += duration
        if self.record_intervals and duration > 0:
            self.intervals.append(Interval(current, self._current_start, now))
        self._current_phase = None

    def add(self, phase: Phase, start: int, end: int) -> None:
        """Record a closed interval directly (used for instantaneous accounting)."""
        if end < start:
            raise ValueError("timeline interval ends before it starts")
        self.totals[phase] += end - start
        if self.record_intervals and end > start:
            self.intervals.append(Interval(phase, start, end))

    @property
    def total_cycles(self) -> int:
        return sum(self.totals.values())

    def fraction(self, phase: Phase) -> float:
        """Fraction of this thread's accounted time spent in ``phase``."""
        total = self.total_cycles
        if total == 0:
            return 0.0
        return self.totals[phase] / total


class TimelineRecorder:
    """Creates and owns one :class:`ThreadTimeline` per thread."""

    def __init__(self, num_threads: int, record_intervals: bool = False) -> None:
        self.threads = [ThreadTimeline(i, record_intervals) for i in range(num_threads)]

    def thread(self, thread_id: int) -> ThreadTimeline:
        return self.threads[thread_id]

    def close_all(self, now: int) -> None:
        """Close every open interval at the end of the simulation."""
        for thread in self.threads:
            thread.end(now)

    def finalize(self, now: int) -> "Timeline":
        """Close open intervals and freeze the result into a :class:`Timeline`."""
        self.close_all(now)
        return Timeline(self.threads, end_cycle=now)


class Timeline:
    """Aggregated per-thread phase accounting for a finished simulation."""

    def __init__(self, threads: Sequence[ThreadTimeline], end_cycle: int) -> None:
        self.threads = list(threads)
        self.end_cycle = end_cycle

    @property
    def num_threads(self) -> int:
        return len(self.threads)

    def totals(self, thread_ids: Iterable[int] | None = None) -> Dict[Phase, int]:
        """Sum of cycles per phase over the selected threads (all by default)."""
        selected = self.threads if thread_ids is None else [self.threads[i] for i in thread_ids]
        result = {phase: 0 for phase in Phase}
        for thread in selected:
            for phase, cycles in thread.totals.items():
                result[phase] += cycles
        return result

    def breakdown(self, thread_ids: Iterable[int] | None = None) -> Dict[Phase, float]:
        """Per-phase fraction of the selected threads' accounted time."""
        totals = self.totals(thread_ids)
        grand_total = sum(totals.values())
        if grand_total == 0:
            return {phase: 0.0 for phase in Phase}
        return {phase: cycles / grand_total for phase, cycles in totals.items()}

    def master_breakdown(self) -> Dict[Phase, float]:
        """Breakdown of thread 0, the master thread."""
        return self.breakdown([0])

    def worker_breakdown(self) -> Dict[Phase, float]:
        """Breakdown aggregated over worker threads (all but thread 0)."""
        if self.num_threads <= 1:
            return {phase: 0.0 for phase in Phase}
        return self.breakdown(range(1, self.num_threads))

    def phase_cycles(self, phase: Phase, thread_ids: Iterable[int] | None = None) -> int:
        """Total cycles the selected threads spent in ``phase``."""
        return self.totals(thread_ids)[phase]

    def busy_fraction(self) -> float:
        """Fraction of total thread-time spent outside IDLE."""
        totals = self.totals()
        grand_total = sum(totals.values())
        if grand_total == 0:
            return 0.0
        return 1.0 - totals[Phase.IDLE] / grand_total

    # ------------------------------------------------------------------ serialization
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form: end cycle plus the per-thread phase totals.

        Individual intervals are *not* serialized — they can number in the
        millions for full-scale runs and nothing downstream of a finished
        experiment consumes them (all reported metrics derive from the
        totals).  A timeline restored via :meth:`from_dict` therefore has
        empty ``intervals`` lists.
        """
        return {
            "end_cycle": self.end_cycle,
            "threads": [
                {phase.value: thread.totals[phase] for phase in Phase}
                for thread in self.threads
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Timeline":
        """Rebuild a totals-only :class:`Timeline` from :meth:`to_dict` output."""
        threads: List[ThreadTimeline] = []
        for thread_id, totals in enumerate(data["threads"]):
            thread = ThreadTimeline(thread_id, record_intervals=False)
            for phase in Phase:
                thread.totals[phase] = int(totals[phase.value])
            threads.append(thread)
        return cls(threads, end_cycle=int(data["end_cycle"]))

    def as_relative_rows(self) -> List[Mapping[str, float]]:
        """One row per thread with the relative time per phase (for reports)."""
        rows: List[Mapping[str, float]] = []
        for thread in self.threads:
            row: Dict[str, float] = {"thread": float(thread.thread_id)}
            for phase in Phase:
                row[phase.value] = thread.fraction(phase)
            rows.append(row)
        return rows
