"""Discrete-event simulation substrate for the TDM reproduction.

This package provides a small coroutine-based discrete-event kernel
(:mod:`repro.sim.engine`), synchronization primitives (:mod:`repro.sim.resources`),
the chip model that ties cores, threads, the runtime system and the DMU
together (:mod:`repro.sim.machine`), per-thread phase accounting
(:mod:`repro.sim.timeline`) and the data-locality model
(:mod:`repro.sim.locality`).
"""

from .engine import Engine, Process
from .events import Acquire, SimEvent, Timeout, WaitEvent
from .resources import Lock
from .timeline import Phase, Timeline, TimelineRecorder
from .machine import Machine, SimulationResult, run_simulation

__all__ = [
    "Engine",
    "Process",
    "SimEvent",
    "Timeout",
    "Acquire",
    "WaitEvent",
    "Lock",
    "Phase",
    "Timeline",
    "TimelineRecorder",
    "Machine",
    "SimulationResult",
    "run_simulation",
]
