"""Per-core data-locality model.

The Locality scheduler of Section VI of the paper exploits producer/consumer
reuse: running a successor task on the core that just produced its inputs
avoids moving the data through the cache hierarchy.  To make that policy
matter in a task-level simulation, each core tracks the block addresses its
recent tasks touched (an LRU set standing in for the private cache) and task
execution time shrinks proportionally to the fraction of its dependences that
hit that set, scaled by the workload's memory sensitivity.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

from ..config import LocalityConfig


class CoreLocalityTracker:
    """LRU set of dependence block addresses recently touched by one core.

    A plain insertion-ordered dict rather than ``OrderedDict``: re-inserting
    after a delete is the ``move_to_end`` and deleting the first key is the
    ``popitem(last=False)``, and the builtin's operations are measurably
    cheaper (touch runs once per executed task).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._blocks: Dict[int, None] = {}

    def touch(self, addresses: Iterable[int]) -> None:
        """Mark ``addresses`` as most recently used on this core."""
        blocks = self._blocks
        for address in addresses:
            if address in blocks:
                del blocks[address]
                blocks[address] = None
            else:
                blocks[address] = None
                if len(blocks) > self.capacity:
                    del blocks[next(iter(blocks))]

    def hit_fraction(self, addresses: Sequence[int]) -> float:
        """Fraction of ``addresses`` currently tracked by this core."""
        if not addresses:
            return 0.0
        hits = sum(1 for address in addresses if address in self._blocks)
        return hits / len(addresses)

    def __contains__(self, address: int) -> bool:
        return address in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)


class LocalityModel:
    """Chip-wide locality model: one tracker per core plus the speedup rule."""

    def __init__(self, num_cores: int, config: LocalityConfig) -> None:
        config.validate()
        self.config = config
        self.trackers = [
            CoreLocalityTracker(config.tracked_blocks_per_core) for _ in range(num_cores)
        ]
        self.total_lookups = 0
        self.total_hits = 0.0
        # Hoisted config reads: execution_cycles runs once per executed task.
        self._enabled = config.enabled
        self._max_speedup_fraction = config.max_speedup_fraction

    def execution_cycles(
        self,
        core_id: int,
        base_cycles: int,
        addresses: Sequence[int],
        memory_sensitivity: float,
    ) -> int:
        """Execution time of a task on ``core_id`` after the locality adjustment.

        ``memory_sensitivity`` in [0, 1] comes from the workload: 1.0 means
        the task is fully memory bound and benefits maximally from reuse,
        0.0 means compute bound (no adjustment).
        """
        tracker = self.trackers[core_id]
        if not self._enabled or not addresses or memory_sensitivity <= 0.0:
            tracker.touch(addresses)
            return base_cycles
        hit_fraction = tracker.hit_fraction(addresses)
        self.total_lookups += 1
        self.total_hits += hit_fraction
        reduction = self._max_speedup_fraction * memory_sensitivity * hit_fraction
        adjusted = int(round(base_cycles * (1.0 - reduction)))
        tracker.touch(addresses)
        return max(1, adjusted) if base_cycles > 0 else 0

    def average_hit_fraction(self) -> float:
        """Mean input hit fraction observed over all executed tasks."""
        if self.total_lookups == 0:
            return 0.0
        return self.total_hits / self.total_lookups
