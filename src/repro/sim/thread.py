"""Master and worker thread models.

The execution model follows Section II-A of the paper: the master thread
executes the program sequentially and creates tasks when it encounters task
creation statements; worker threads iterate over the scheduling and execution
phases; when the master reaches a global synchronization point (the end of a
parallel region) it adopts the behaviour of a worker thread until every task
of the region has executed, and then resumes the sequential program.

Phase accounting (DEPS / SCHED / EXEC / IDLE) is performed here so that the
runtime-system models only need to express *how long* their operations take,
not how they are categorized.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List

from ..runtime.task import TaskRegion
from ..units import us_to_cycles
from .engine import Engine
from .events import WaitEvent
from .timeline import Phase, ThreadTimeline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .machine import Machine


class RegionState:
    """Shared progress tracking of one parallel region."""

    def __init__(self, engine: Engine, region: TaskRegion, index: int) -> None:
        self.engine = engine
        self.region = region
        self.index = index
        self.total_tasks = region.num_tasks
        self.created = 0
        self.finished = 0
        self.all_created = False
        self.done_event = engine.event(f"region{index}.done")

    @property
    def done(self) -> bool:
        return self.done_event.triggered

    def note_created(self) -> None:
        self.created += 1

    def note_all_created(self) -> None:
        self.all_created = True
        if self.finished == self.total_tasks:
            self.done_event.trigger()

    def note_finished(self) -> bool:
        """Record one finished task; returns True when this completed the region."""
        self.finished += 1
        if self.all_created and self.finished == self.total_tasks and not self.done:
            self.done_event.trigger()
            return True
        return False


def _inline_pop_enabled(runtime) -> bool:
    """Whether the worker loops may inline the software-pool pop.

    True only when the class that provides the runtime's *active*
    ``try_get_task`` also declares ``inline_software_pop`` in its own body —
    the declaration asserts "my try_get_task is exactly the inlined
    sequence".  A subclass that overrides ``try_get_task`` without
    re-declaring the flag falls back to the generator path instead of being
    silently bypassed with stale timing.
    """
    if not runtime.inline_software_pop:
        return False
    for klass in type(runtime).__mro__:
        if "try_get_task" in vars(klass):
            return "inline_software_pop" in vars(klass)
    return False


class SimThread:
    """One hardware thread (the simulation pins one thread per core)."""

    def __init__(self, machine: "Machine", thread_id: int, is_master: bool) -> None:
        self.machine = machine
        self.thread_id = thread_id
        self.core_id = thread_id
        self.is_master = is_master
        self.timeline: ThreadTimeline = machine.recorder.thread(thread_id)
        self.process = None  # assigned by the machine when the process starts
        self.tasks_executed = 0

    # ------------------------------------------------------------------ process body
    def run(self) -> Iterator:
        """Process body: iterate over the program's parallel regions.

        The worker-side loop is inlined here rather than delegated through
        ``yield from self._worker_loop(...)``: every ``send`` into a process
        traverses the whole generator-delegation chain, and worker events
        are the majority of all simulation events, so one less frame on that
        chain is a measurable win.  ``_worker_loop`` (the same loop body) is
        kept for the master thread, which enters it only at the region
        barrier.
        """
        machine = self.machine
        engine = machine.engine
        self.timeline.begin(Phase.IDLE, engine.now)
        if self.is_master:
            runtime = machine.runtime
            timeline = self.timeline
            clock_ghz = machine.clock_ghz
            for region_state in machine.region_states:
                # Master side, inlined like the worker loop below.
                region = region_state.region
                if region.sequential_us_before > 0:
                    timeline.begin(Phase.EXEC, engine.now)
                    yield us_to_cycles(region.sequential_us_before, clock_ghz)
                for definition in region.tasks:
                    if definition.creation_work_us > 0:
                        timeline.begin(Phase.EXEC, engine.now)
                        yield us_to_cycles(definition.creation_work_us, clock_ghz)
                    timeline.begin(Phase.DEPS, engine.now)
                    yield from runtime.create_task(self, definition, region_state.index)
                    region_state.note_created()
                region_state.note_all_created()
                runtime.notify_workers()
                # The master reached the barrier: behave as a worker until
                # the region drains.
                yield from self._worker_loop(region_state)
            self.timeline.begin(Phase.IDLE, engine.now)
            return None

        runtime = machine.runtime
        timeline = self.timeline
        # Bound methods hoisted out of the wake loop (it runs once per
        # worker wake-up, the most frequent control path in a simulation).
        wait_target = runtime.wake_channel.wait_target
        work_available = runtime.work_available_hint
        core_id = self.core_id
        process = self.process
        inline_pop = _inline_pop_enabled(runtime)
        if inline_pop:
            pool = runtime.pool
            acquire_runtime = runtime.acquire_runtime_lock
            lock_cycles = runtime._lock_cycles
            pop_cycles = runtime._pop_cycles
            runtime_lock = runtime.runtime_lock
        for region_state in machine.region_states:
            # Keep this block in sync with _worker_loop (it is the same loop,
            # inlined to shorten the per-event delegation chain).
            done_event = region_state.done_event
            wait_command = WaitEvent(done_event)
            while not done_event.triggered:
                wake_target = wait_target()
                # The SCHED phase only opens when a pop will actually be
                # attempted.  On a no-work wake-up the old begin(SCHED)/
                # begin(IDLE) pair at the same cycle recorded a zero-duration
                # visit that the timeline discards anyway; skipping it leaves
                # every phase total identical.
                if work_available():
                    timeline.begin(Phase.SCHED, engine.now)
                    if inline_pop:
                        # try_get_task, inlined (identical yields; see
                        # RuntimeSystem.inline_software_pop): one less
                        # generator + send() frame per pop attempt.
                        if pool.peek_available():
                            yield acquire_runtime
                            yield lock_cycles
                            entry = pool.pop(core_id)
                            if entry is not None:
                                yield pop_cycles
                            runtime_lock.release(process)
                        else:
                            entry = None
                    else:
                        entry = yield from runtime.try_get_task(self)
                else:
                    entry = None
                if entry is None:
                    timeline.begin(Phase.IDLE, engine.now)
                    if done_event.triggered:
                        break
                    wait_command.event = wake_target
                    yield wait_command
                    continue
                task = entry.task
                timeline.begin(Phase.EXEC, engine.now)
                task.mark_running(engine.now, core_id)
                yield machine.execution_cycles(core_id, task)
                self.tasks_executed += 1
                timeline.begin(Phase.DEPS, engine.now)
                yield from runtime.finish_task(self, task)
                if region_state.note_finished():
                    runtime.notify_workers()
            timeline.begin(Phase.IDLE, engine.now)
        self.timeline.begin(Phase.IDLE, engine.now)
        return None

    # ------------------------------------------------------------------ workers
    def _worker_loop(self, region_state: RegionState) -> Iterator:
        machine = self.machine
        engine = machine.engine
        runtime = machine.runtime
        timeline = self.timeline
        wait_target = runtime.wake_channel.wait_target
        work_available = runtime.work_available_hint
        core_id = self.core_id
        process = self.process
        inline_pop = _inline_pop_enabled(runtime)
        if inline_pop:
            pool = runtime.pool
            acquire_runtime = runtime.acquire_runtime_lock
            lock_cycles = runtime._lock_cycles
            pop_cycles = runtime._pop_cycles
            runtime_lock = runtime.runtime_lock
        done_event = region_state.done_event
        # Reusable WaitEvent command: the target event changes per wait, so
        # the command is mutated in place instead of allocated per idle spin.
        wait_command = WaitEvent(done_event)
        while not done_event.triggered:
            wake_target = wait_target()
            # Skip the generator round trip entirely when no work is visible;
            # try_get_task performs the same hint check first, so the timing
            # and pool behaviour are identical either way.  SCHED opens only
            # when a pop is attempted (see the inlined loop in run()).
            if work_available():
                timeline.begin(Phase.SCHED, engine.now)
                if inline_pop:
                    # try_get_task, inlined (identical yields; see
                    # RuntimeSystem.inline_software_pop).
                    if pool.peek_available():
                        yield acquire_runtime
                        yield lock_cycles
                        entry = pool.pop(core_id)
                        if entry is not None:
                            yield pop_cycles
                        runtime_lock.release(process)
                    else:
                        entry = None
                else:
                    entry = yield from runtime.try_get_task(self)
            else:
                entry = None
            if entry is None:
                timeline.begin(Phase.IDLE, engine.now)
                if done_event.triggered:
                    break
                wait_command.event = wake_target
                yield wait_command
                continue
            task = entry.task
            # Task execution.
            timeline.begin(Phase.EXEC, engine.now)
            task.mark_running(engine.now, core_id)
            yield machine.execution_cycles(core_id, task)
            self.tasks_executed += 1
            # Task finalization (dependence management work).
            timeline.begin(Phase.DEPS, engine.now)
            yield from runtime.finish_task(self, task)
            if region_state.note_finished():
                runtime.notify_workers()
        self.timeline.begin(Phase.IDLE, engine.now)


def build_threads(machine: "Machine") -> List[SimThread]:
    """Create one thread per core; thread 0 is the master."""
    return [
        SimThread(machine, thread_id, is_master=(thread_id == 0))
        for thread_id in range(machine.config.chip.num_cores)
    ]
