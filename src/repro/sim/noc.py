"""Network-on-chip latency model.

The DMU is a centralized module attached to the NoC (Figure 3 of the paper).
Every ISA instruction issued by a core therefore pays a round-trip latency to
reach the DMU and return the result.  A full mesh simulation is unnecessary
for the paper's experiments — the DMU traffic is tiny compared to task
durations — so the model charges a base round-trip plus a small per-hop
component derived from the core's position in a square mesh.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class NocModel:
    """Distance-aware round-trip latency between a core and the DMU."""

    num_cores: int = 32
    cycles_per_hop: int = 2
    router_cycles: int = 1
    base_cycles: int = 10

    def __post_init__(self) -> None:
        # Round trips are pure functions of the core position; the table is
        # precomputed because the runtimes charge a round trip on every ISA
        # instruction (object.__setattr__ is the frozen-dataclass idiom).
        object.__setattr__(
            self,
            "_round_trip_table",
            tuple(self._compute_round_trip(core) for core in range(self.num_cores)),
        )

    def mesh_side(self) -> int:
        """Side of the smallest square mesh that fits all cores (plus the DMU)."""
        return max(1, math.ceil(math.sqrt(self.num_cores + 1)))

    def hops_to_dmu(self, core_id: int) -> int:
        """Manhattan distance from ``core_id`` to the DMU placed at the mesh center."""
        if core_id < 0 or core_id >= self.num_cores:
            raise ValueError(f"core_id {core_id} out of range [0, {self.num_cores})")
        side = self.mesh_side()
        x, y = core_id % side, core_id // side
        cx, cy = side // 2, side // 2
        return abs(x - cx) + abs(y - cy)

    def _compute_round_trip(self, core_id: int) -> int:
        hops = self.hops_to_dmu(core_id)
        one_way = self.base_cycles // 2 + hops * (self.cycles_per_hop + self.router_cycles)
        return 2 * one_way

    def round_trip_cycles(self, core_id: int) -> int:
        """Round-trip latency in cycles for a request/response pair."""
        if 0 <= core_id < self.num_cores:
            return self._round_trip_table[core_id]
        raise ValueError(f"core_id {core_id} out of range [0, {self.num_cores})")

    def average_round_trip_cycles(self) -> float:
        """Mean round-trip latency over all cores (used by analytical models)."""
        return sum(self.round_trip_cycles(c) for c in range(self.num_cores)) / self.num_cores
