"""A small coroutine-based discrete-event simulation kernel.

The kernel is deliberately minimal (in the spirit of SimPy, but specialized
for this project): an event queue ordered by time, and processes implemented
as generators that yield commands.  A command is either a bare non-negative
``int`` (the timeout fast path: suspend for that many cycles) or one of the
:class:`~repro.sim.events.Command` objects (``Timeout``, ``WaitEvent``,
``Acquire``).

Hot-path design (this is the innermost loop of every simulation, executed
once per event, so it avoids every avoidable allocation and call):

* Heap entries are plain ``(time, seq, process, value)`` tuples resumed
  directly by the run loop — no per-event closure is allocated.  Entries
  with ``process=None`` carry a zero-argument callback in ``value`` (the
  public :meth:`Engine.schedule` API).
* Zero-delay wakeups (event triggers, lock grants, process starts) never
  touch the heap: they are appended to a FIFO *ready deque* as
  ``(seq, process, value)`` and merged with the heap by global sequence
  number, so the observable event order is identical to a single global
  queue — two runs of the same configuration stay bit-identical, and so
  does a run against the pre-deque kernel.
* Command dispatch in :meth:`Process.resume` is keyed on the exact command
  type (``type(command) is ...``) with the bare-int timeout checked first;
  the ``isinstance`` chain survives only in the cold error/subclass path.

Determinism: events scheduled at the same time are processed in scheduling
order (a monotonically increasing sequence number breaks ties), so two runs
of the same configuration produce bit-identical results.
"""

from __future__ import annotations

import math
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Generator, List, Optional

from ..errors import DeadlockError, SimulationError
from .events import Acquire, SimEvent, Timeout, WaitEvent

ProcessBody = Generator[Any, Any, Any]


class Process:
    """A simulation process wrapping a generator of commands.

    The engine drives the generator: each ``yield`` suspends the process
    until the yielded command is satisfied, at which point the generator is
    resumed with the command's result (the trigger value for events, ``None``
    for timeouts and lock acquisitions).
    """

    __slots__ = ("engine", "name", "generator", "finished", "result", "completion", "_send")

    def __init__(self, engine: "Engine", generator: ProcessBody, name: str = "process") -> None:
        self.engine = engine
        self.name = name
        self.generator = generator
        self.finished = False
        self.result: Any = None
        self.completion = SimEvent(engine, f"{name}.completion")
        # Bound ``generator.send`` cached once: resume() is called once per
        # event and the two-step attribute lookup is measurable at that rate.
        self._send = generator.send

    def start(self) -> None:
        """Queue the first step of the process at the current time."""
        self.engine._wake(self, None)

    def resume(self, value: Any) -> None:
        """Advance the generator with ``value`` and interpret its next command."""
        if self.finished:
            return
        try:
            command = self._send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.engine._process_finished(self)
            self.completion.trigger(stop.value)
            return
        except Exception as exc:  # surface the failing process in the traceback
            self.finished = True
            self.engine._process_finished(self)
            raise SimulationError(f"process {self.name!r} raised {exc!r}") from exc

        # Command dispatch, keyed on the exact type.  Bare ints are the
        # timeout fast path the runtime models use for every busy-cycle
        # charge; Timeout objects remain supported (their cycle count is
        # validated at construction).
        cls = command.__class__
        if cls is int:
            if command > 0:
                engine = self.engine
                seq = engine._seq
                engine._seq = seq + 1
                heappush(engine._queue, (engine.now + command, seq, self, None))
            elif command == 0:
                self.engine._wake(self, None)
            else:
                raise SimulationError(
                    f"process {self.name!r} yielded a negative timeout: {command}"
                )
        elif cls is Timeout:
            cycles = command.cycles
            if cycles:
                engine = self.engine
                seq = engine._seq
                engine._seq = seq + 1
                heappush(engine._queue, (engine.now + cycles, seq, self, None))
            else:
                self.engine._wake(self, None)
        elif cls is WaitEvent:
            # add_waiter, inlined (one call per event wait).
            event = command.event
            if event.triggered:
                self.engine._wake(self, event.value)
            else:
                event._waiters.append(self)
        elif cls is Acquire:
            command.lock._enqueue(self)
        else:
            self._dispatch_other(command)

    def _dispatch_other(self, command: Any) -> None:
        """Cold path: command subclasses and invalid yields."""
        if isinstance(command, Timeout):
            cycles = command.cycles
        elif isinstance(command, WaitEvent):
            command.event.add_waiter(self)
            return
        elif isinstance(command, Acquire):
            command.lock._enqueue(self)
            return
        elif isinstance(command, int) and not isinstance(command, bool):
            if command < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded a negative timeout: {command}"
                )
            cycles = command
        else:
            raise SimulationError(
                f"process {self.name!r} yielded an unknown command: {command!r}"
            )
        engine = self.engine
        if cycles:
            heappush(engine._queue, (engine.now + cycles, engine._next_seq(), self, None))
        else:
            engine._wake(self, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "active"
        return f"Process({self.name!r}, {state})"


class Engine:
    """Discrete-event engine: clock, event queues and process registry."""

    __slots__ = ("now", "_queue", "_ready", "_seq", "_processes", "_live_processes")

    def __init__(self) -> None:
        #: Current simulation time in cycles (read-only for client code; the
        #: run loop is the only writer).  A plain attribute, not a property:
        #: it is read several times per event by the thread and runtime
        #: models and the descriptor call was measurable.
        self.now = 0
        #: Timed events: (time, seq, process, value) or (time, seq, None, callback).
        self._queue: list = []
        #: Zero-delay wakeups at the current time: (seq, process, value).
        self._ready: deque = deque()
        self._seq = 0
        self._processes: List[Process] = []
        self._live_processes = 0

    # ------------------------------------------------------------------ queues
    def _next_seq(self) -> int:
        seq = self._seq
        self._seq = seq + 1
        return seq

    def _wake(self, process: Process, value: Any = None) -> None:
        """Resume ``process`` with ``value`` at the current time (FIFO order).

        This is the zero-delay fast path used by event triggers, lock grants
        and process starts; it bypasses the heap entirely while preserving
        the global scheduling order (the shared sequence counter is the tie
        breaker the run loop merges on).
        """
        seq = self._seq
        self._seq = seq + 1
        self._ready.append((seq, process, value))

    def schedule(self, delay: "int | float", callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` cycles from now.

        Fractional delays (cost models may produce floats) are rounded
        half-up to the nearest cycle rather than truncated, so a 2.7-cycle
        cost is charged 3 cycles, not 2.  A delay that is still negative
        after rounding is an error.
        """
        cycles = delay if isinstance(delay, int) else math.floor(delay + 0.5)
        if cycles < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        heappush(self._queue, (self.now + cycles, seq, None, callback))

    def event(self, name: str = "event") -> SimEvent:
        """Create a new one-shot event bound to this engine."""
        return SimEvent(self, name)

    def process(self, generator: ProcessBody, name: str = "process") -> Process:
        """Register and start a new process built from ``generator``."""
        process = Process(self, generator, name=name)
        self._processes.append(process)
        self._live_processes += 1
        process.start()
        return process

    def _process_finished(self, process: Process) -> None:
        self._live_processes -= 1

    # ------------------------------------------------------------------ registry
    @property
    def processes(self) -> List[Process]:
        """All processes ever registered with the engine.

        Returns the live internal list (treat it as read-only); monitoring
        code polling this property no longer pays an O(n) tuple copy per
        access.  For progress accounting use :attr:`live_process_count` /
        :attr:`finished_process_count`, which are O(1).
        """
        return self._processes

    @property
    def live_process_count(self) -> int:
        """Number of registered processes that have not finished."""
        return self._live_processes

    @property
    def finished_process_count(self) -> int:
        """Number of registered processes that have run to completion."""
        return len(self._processes) - self._live_processes

    # ------------------------------------------------------------------ run loop
    def run(self, until: Optional[int] = None) -> int:
        """Run until the event queues drain (or until ``until`` cycles).

        Returns the final simulation time.  Raises :class:`DeadlockError` if
        the queues drain while registered processes are still unfinished,
        which indicates a lost wake-up or a dependence cycle in the workload.
        Calling ``run`` again after an ``until``-bounded return resumes the
        simulation exactly where it stopped.
        """
        queue = self._queue
        ready = self._ready
        popleft = ready.popleft
        now = self.now
        while True:
            if ready:
                # Ready entries fire at the current time; a heap event at the
                # same time with a smaller sequence number was scheduled
                # earlier and must run first.
                if queue:
                    head = queue[0]
                    if head[0] == now and head[1] < ready[0][0]:
                        entry = heappop(queue)
                        target = entry[2]
                        if target is None:
                            entry[3]()
                        else:
                            target.resume(entry[3])
                        continue
                _seq, process, value = popleft()
                process.resume(value)
                continue
            if not queue:
                break
            entry = heappop(queue)
            time = entry[0]
            if until is not None and time > until:
                heappush(queue, entry)
                self.now = until
                return until
            self.now = now = time
            target = entry[2]
            if target is None:
                entry[3]()
            else:
                target.resume(entry[3])
        if self._live_processes > 0:
            blocked = [p.name for p in self._processes if not p.finished]
            raise DeadlockError(
                "simulation deadlocked: no pending events but "
                f"{self._live_processes} processes still blocked: {blocked[:8]}"
            )
        return self.now

    def run_all(self, max_cycles: Optional[int] = None) -> int:
        """Run to completion, optionally enforcing a cycle budget."""
        final = self.run(until=max_cycles)
        if max_cycles is not None and (self._queue or self._ready):
            raise SimulationError(
                f"simulation exceeded the cycle budget of {max_cycles} cycles"
            )
        return final
