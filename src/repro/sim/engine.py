"""A small coroutine-based discrete-event simulation kernel.

The kernel is deliberately minimal (in the spirit of SimPy, but specialized
for this project): an event queue ordered by time, and processes implemented
as generators that yield :class:`~repro.sim.events.Command` objects.

Determinism: events scheduled at the same time are processed in scheduling
order (a monotonically increasing sequence number breaks ties), so two runs
of the same configuration produce bit-identical results.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Generator, Iterable

from ..errors import DeadlockError, SimulationError
from .events import Acquire, Command, SimEvent, Timeout, WaitEvent

ProcessBody = Generator[Command, Any, Any]


class Process:
    """A simulation process wrapping a generator of commands.

    The engine drives the generator: each ``yield`` suspends the process
    until the yielded command is satisfied, at which point the generator is
    resumed with the command's result (the trigger value for events, ``None``
    for timeouts and lock acquisitions).
    """

    __slots__ = ("engine", "name", "generator", "finished", "result", "completion", "_waiting")

    def __init__(self, engine: "Engine", generator: ProcessBody, name: str = "process") -> None:
        self.engine = engine
        self.name = name
        self.generator = generator
        self.finished = False
        self.result: Any = None
        self.completion = SimEvent(engine, f"{name}.completion")
        self._waiting = False

    def start(self) -> None:
        """Schedule the first step of the process at the current time."""
        self.engine.schedule(0, lambda: self.resume(None))

    def resume(self, value: Any) -> None:
        """Advance the generator with ``value`` and interpret its next command."""
        if self.finished:
            return
        self._waiting = False
        try:
            command = self.generator.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.engine._process_finished(self)
            self.completion.trigger(stop.value)
            return
        except Exception as exc:  # surface the failing process in the traceback
            self.finished = True
            self.engine._process_finished(self)
            raise SimulationError(f"process {self.name!r} raised {exc!r}") from exc
        self._dispatch(command)

    def _dispatch(self, command: Command) -> None:
        self._waiting = True
        if isinstance(command, Timeout):
            self.engine.schedule(command.cycles, lambda: self.resume(None))
        elif isinstance(command, WaitEvent):
            command.event.add_waiter(self)
        elif isinstance(command, Acquire):
            command.lock._enqueue(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded an unknown command: {command!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else ("waiting" if self._waiting else "ready")
        return f"Process({self.name!r}, {state})"


class Engine:
    """Discrete-event engine: clock, event queue and process registry."""

    def __init__(self) -> None:
        self._now = 0
        self._queue: list[tuple[int, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._processes: list[Process] = []
        self._live_processes = 0

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    def schedule(self, delay: int | float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` cycles from now.

        Fractional delays (cost models may produce floats) are rounded
        half-up to the nearest cycle rather than truncated, so a 2.7-cycle
        cost is charged 3 cycles, not 2.  A delay that is still negative
        after rounding is an error.
        """
        cycles = delay if isinstance(delay, int) else math.floor(delay + 0.5)
        if cycles < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + cycles, next(self._sequence), callback))

    def event(self, name: str = "event") -> SimEvent:
        """Create a new one-shot event bound to this engine."""
        return SimEvent(self, name)

    def process(self, generator: ProcessBody, name: str = "process") -> Process:
        """Register and start a new process built from ``generator``."""
        process = Process(self, generator, name=name)
        self._processes.append(process)
        self._live_processes += 1
        process.start()
        return process

    def _process_finished(self, process: Process) -> None:
        self._live_processes -= 1

    @property
    def processes(self) -> Iterable[Process]:
        """All processes ever registered with the engine."""
        return tuple(self._processes)

    def run(self, until: int | None = None) -> int:
        """Run until the event queue drains (or until ``until`` cycles).

        Returns the final simulation time.  Raises :class:`DeadlockError` if
        the queue drains while registered processes are still unfinished,
        which indicates a lost wake-up or a dependence cycle in the workload.
        """
        while self._queue:
            time, _seq, callback = heapq.heappop(self._queue)
            if until is not None and time > until:
                heapq.heappush(self._queue, (time, _seq, callback))
                self._now = until
                return self._now
            self._now = time
            callback()
        if self._live_processes > 0:
            blocked = [p.name for p in self._processes if not p.finished]
            raise DeadlockError(
                "simulation deadlocked: no pending events but "
                f"{self._live_processes} processes still blocked: {blocked[:8]}"
            )
        return self._now

    def run_all(self, max_cycles: int | None = None) -> int:
        """Run to completion, optionally enforcing a cycle budget."""
        final = self.run(until=max_cycles)
        if max_cycles is not None and self._queue:
            raise SimulationError(
                f"simulation exceeded the cycle budget of {max_cycles} cycles"
            )
        return final
