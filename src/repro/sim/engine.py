"""A small coroutine-based discrete-event simulation kernel.

The kernel is deliberately minimal (in the spirit of SimPy, but specialized
for this project): an event queue ordered by time, and processes implemented
as generators that yield commands.  A command is either a bare non-negative
``int`` (the timeout fast path: suspend for that many cycles) or one of the
:class:`~repro.sim.events.Command` objects (``Timeout``, ``WaitEvent``,
``Acquire``).

Hot-path design (this is the innermost loop of every simulation, executed
once per event, so it avoids every avoidable allocation and call):

* Timed events live in a **two-tier queue**: a bucketed near-future time
  wheel covering the next :data:`WHEEL_SPAN` cycles, backed by a binary heap
  for far-future events.  An event ``delta < WHEEL_SPAN`` cycles away is a
  plain ``list.append`` into the bucket for its cycle; only long sleeps
  (task bodies, large runtime costs) pay the ``heappush``.  When the clock
  advances, heap events that fall inside the new window migrate into the
  wheel, so the run loop never merges against the heap directly.
* Buckets hold ``(seq, target, value)`` entries resumed directly by the run
  loop — no per-event closure is allocated, and every target exposes the
  same ``resume(value)`` shape (a process, a batched waiter drain, or the
  :class:`_CallbackTarget` wrapper of the public :meth:`Engine.schedule`
  API), so dispatch is uniform.  Within a bucket, append order *is* global
  sequence order (the shared counter is allocated in scheduling order and a
  bucket only ever collects entries for one cycle), so a bucket needs no
  sorting — and because heap-to-wheel migration happens eagerly on every
  clock advance, migrated entries are always appended before any same-cycle
  entry is scheduled directly, keeping that invariant intact.
* The next nonempty bucket is found in O(log #active-buckets) through a
  small auxiliary heap of *bucket activation times* (one entry per bucket
  that became nonempty, not one per event), so clustered events — the
  common case: many processes waking on the same cycle — cost one heap
  entry total instead of one each.
* Zero-delay wakeups (event triggers, lock grants, process starts) never
  touch the wheel or the heap: they are appended to a FIFO *ready deque* as
  ``(seq, process, value)`` and merged with the current bucket by global
  sequence number, so the observable event order is identical to a single
  global queue — two runs of the same configuration stay bit-identical, and
  so does a run against the pre-wheel kernel.
* A broadcast event trigger with several waiters enqueues **one** batched
  drain entry (see :class:`repro.sim.events.SimEvent`) instead of one deque
  entry per waiter; the drain resumes its waiters back to back in
  registration order, which is exactly the order the per-waiter entries
  produced.
* Command dispatch in :meth:`Process.resume` is keyed on the exact command
  type (``type(command) is ...``) with the bare-int timeout checked first;
  the ``isinstance`` chain survives only in the cold error/subclass path.

Determinism: events scheduled at the same time are processed in scheduling
order (a monotonically increasing sequence number breaks ties), so two runs
of the same configuration produce bit-identical results.  See
``docs/determinism.md`` for the contract and ``docs/architecture.md`` for a
walk-through of the queue design.
"""

from __future__ import annotations

import math
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Generator, List, Optional

from ..errors import DeadlockError, SimulationError
from .events import Acquire, SimEvent, Timeout, WaitEvent

ProcessBody = Generator[Any, Any, Any]


class _CallbackTarget:
    """Adapter giving a plain callback the ``resume(value)`` shape.

    Queue entries always carry a target with a ``resume`` method (a
    :class:`Process`, a :class:`~repro.sim.events._WaiterBatch`, or this
    wrapper for :meth:`Engine.schedule` callbacks), so the run loop performs
    a single uniform dispatch with no per-event type check.  Callbacks are
    rare (cold control paths), processes are the per-event common case.
    """

    __slots__ = ("callback",)

    def __init__(self, callback: Callable[[], None]) -> None:
        self.callback = callback

    def resume(self, value: Any) -> None:
        self.callback()

#: Width of the near-future time wheel in cycles.  Chosen from the measured
#: delay distribution of the fig02/fig12 smoke set: ~95% of all timed events
#: are scheduled less than 1024 cycles ahead (runtime busy-cycle charges,
#: NoC round trips and short task bodies; the original 128-cycle span only
#: covered ~78%), while long task bodies (thousands of cycles) stay on the
#: far-future heap.  Must be a power of two: bucket index is ``time & MASK``.
WHEEL_SPAN = 1024
WHEEL_MASK = WHEEL_SPAN - 1


class Process:
    """A simulation process wrapping a generator of commands.

    The engine drives the generator: each ``yield`` suspends the process
    until the yielded command is satisfied, at which point the generator is
    resumed with the command's result (the trigger value for events, ``None``
    for timeouts and lock acquisitions).
    """

    __slots__ = ("engine", "name", "generator", "finished", "result", "completion", "_send")

    def __init__(self, engine: "Engine", generator: ProcessBody, name: str = "process") -> None:
        self.engine = engine
        self.name = name
        self.generator = generator
        self.finished = False
        self.result: Any = None
        self.completion = SimEvent(engine, f"{name}.completion")
        # Bound ``generator.send`` cached once: resume() is called once per
        # event and the two-step attribute lookup is measurable at that rate.
        self._send = generator.send

    def start(self) -> None:
        """Queue the first step of the process at the current time."""
        self.engine._wake(self, None)

    def resume(self, value: Any) -> None:
        """Advance the generator with ``value`` and interpret its next command."""
        if self.finished:
            return
        try:
            command = self._send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.engine._process_finished(self)
            self.completion.trigger(stop.value)
            return
        except Exception as exc:  # surface the failing process in the traceback
            self.finished = True
            self.engine._process_finished(self)
            raise SimulationError(f"process {self.name!r} raised {exc!r}") from exc

        # Command dispatch, keyed on the exact type.  Bare ints are the
        # timeout fast path the runtime models use for every busy-cycle
        # charge; Timeout objects remain supported (their cycle count is
        # validated at construction).
        cls = command.__class__
        if cls is int:
            if command > 0:
                engine = self.engine
                seq = engine._seq
                engine._seq = seq + 1
                time = engine.now + command
                if command < WHEEL_SPAN:
                    bucket = engine._wheel[time & WHEEL_MASK]
                    if not bucket:
                        heappush(engine._bucket_times, time)
                    bucket.append((seq, self, None))
                else:
                    heappush(engine._queue, (time, seq, self, None))
            elif command == 0:
                self.engine._wake(self, None)
            else:
                raise SimulationError(
                    f"process {self.name!r} yielded a negative timeout: {command}"
                )
        elif cls is Timeout:
            cycles = command.cycles
            if cycles:
                engine = self.engine
                seq = engine._seq
                engine._seq = seq + 1
                time = engine.now + cycles
                if cycles < WHEEL_SPAN:
                    bucket = engine._wheel[time & WHEEL_MASK]
                    if not bucket:
                        heappush(engine._bucket_times, time)
                    bucket.append((seq, self, None))
                else:
                    heappush(engine._queue, (time, seq, self, None))
            else:
                self.engine._wake(self, None)
        elif cls is WaitEvent:
            # add_waiter, inlined (one call per event wait).
            event = command.event
            if event.triggered:
                self.engine._wake(self, event.value)
            else:
                event._waiters.append(self)
        elif cls is Acquire:
            # Lock._enqueue, with the uncontended grant (the overwhelmingly
            # common case) inlined: one method call less per ISA instruction
            # and per runtime-lock acquisition.
            lock = command.lock
            if lock._holder is None:
                engine = self.engine
                lock._holder = self
                lock._acquired_at = engine.now
                lock.acquisitions += 1
                seq = engine._seq
                engine._seq = seq + 1
                engine._ready.append((seq, self, None))
            else:
                lock._enqueue(self)
        else:
            self._dispatch_other(command)

    def _dispatch_other(self, command: Any) -> None:
        """Cold path: command subclasses and invalid yields."""
        if isinstance(command, Timeout):
            cycles = command.cycles
        elif isinstance(command, WaitEvent):
            command.event.add_waiter(self)
            return
        elif isinstance(command, Acquire):
            command.lock._enqueue(self)
            return
        elif isinstance(command, int) and not isinstance(command, bool):
            if command < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded a negative timeout: {command}"
                )
            cycles = command
        else:
            raise SimulationError(
                f"process {self.name!r} yielded an unknown command: {command!r}"
            )
        engine = self.engine
        if cycles:
            engine._schedule_entry(engine.now + cycles, engine._next_seq(), self, None)
        else:
            engine._wake(self, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "active"
        return f"Process({self.name!r}, {state})"


class Engine:
    """Discrete-event engine: clock, the two-tier event queue and the
    process registry.

    Pending events live in three places, merged by the run loop into one
    global ``(time, seq)`` order:

    * ``_wheel`` — :data:`WHEEL_SPAN` buckets of near-future timed events,
      indexed by ``time & WHEEL_MASK``; ``_bucket_times`` is a min-heap of
      the times of nonempty buckets (one entry per bucket, not per event).
    * ``_queue`` — binary heap of far-future timed events; invariant: every
      entry's time is at least ``now + WHEEL_SPAN`` (events migrate into
      the wheel whenever the clock advances).
    * ``_ready`` — FIFO deque of zero-delay wakeups at the current time.
    """

    __slots__ = ("now", "_queue", "_ready", "_wheel", "_bucket_times", "_seq",
                 "_processes", "_live_processes")

    def __init__(self) -> None:
        #: Current simulation time in cycles (read-only for client code; the
        #: run loop is the only writer).  A plain attribute, not a property:
        #: it is read several times per event by the thread and runtime
        #: models and the descriptor call was measurable.
        self.now = 0
        #: Far-future timed events: (time, seq, target, value),
        #: time >= now + WHEEL_SPAN.
        self._queue: list = []
        #: Zero-delay wakeups at the current time: (seq, target, value).
        self._ready: deque = deque()
        #: Near-future buckets of (seq, target, value); bucket index is
        #: time & WHEEL_MASK, so bucket i holds only events for the single
        #: cycle in [now, now + WHEEL_SPAN) congruent to i.
        self._wheel: List[list] = [[] for _ in range(WHEEL_SPAN)]
        #: Min-heap of times of nonempty wheel buckets (the current cycle's
        #: bucket is examined directly and never appears here).
        self._bucket_times: list = []
        self._seq = 0
        self._processes: List[Process] = []
        self._live_processes = 0

    # ------------------------------------------------------------------ queues
    def _next_seq(self) -> int:
        seq = self._seq
        self._seq = seq + 1
        return seq

    def _wake(self, process: Process, value: Any = None) -> None:
        """Resume ``process`` with ``value`` at the current time (FIFO order).

        This is the zero-delay fast path used by event triggers, lock grants
        and process starts; it bypasses the timed queues entirely while
        preserving the global scheduling order (the shared sequence counter
        is the tie breaker the run loop merges on).
        """
        seq = self._seq
        self._seq = seq + 1
        self._ready.append((seq, process, value))

    def _schedule_entry(self, time: int, seq: int, target: Any, value: Any) -> None:
        """Queue a timed entry on the wheel or the far-future heap.

        Cold-path helper shared by :meth:`schedule` (which wraps its callback
        in :class:`_CallbackTarget`) and command subclasses; the bare-int/
        :class:`Timeout` dispatch in :meth:`Process.resume` inlines the same
        logic.  An entry for the *current* cycle goes onto the ready deque
        (it carries a fresh sequence number, so FIFO order there *is* its
        seq order) — this keeps the invariant that a cycle's wheel bucket
        never grows while that cycle is being drained, which is what lets
        the run loop drain buckets without per-event merge checks.
        """
        delta = time - self.now
        if delta < WHEEL_SPAN:
            if delta <= 0:
                self._ready.append((seq, target, value))
                return
            bucket = self._wheel[time & WHEEL_MASK]
            if not bucket:
                heappush(self._bucket_times, time)
            bucket.append((seq, target, value))
        else:
            heappush(self._queue, (time, seq, target, value))

    def schedule(self, delay: "int | float", callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` cycles from now.

        Fractional delays (cost models may produce floats) are rounded
        half-up to the nearest cycle rather than truncated, so a 2.7-cycle
        cost is charged 3 cycles, not 2.  A delay that is still negative
        after rounding is an error.
        """
        cycles = delay if isinstance(delay, int) else math.floor(delay + 0.5)
        if cycles < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._schedule_entry(
            self.now + cycles, self._next_seq(), _CallbackTarget(callback), None
        )

    def event(self, name: str = "event") -> SimEvent:
        """Create a new one-shot event bound to this engine."""
        return SimEvent(self, name)

    def process(self, generator: ProcessBody, name: str = "process") -> Process:
        """Register and start a new process built from ``generator``."""
        process = Process(self, generator, name=name)
        self._processes.append(process)
        self._live_processes += 1
        process.start()
        return process

    def _process_finished(self, process: Process) -> None:
        self._live_processes -= 1

    def _has_pending_events(self) -> bool:
        """True while any timed or zero-delay event is queued."""
        return bool(
            self._ready
            or self._bucket_times
            or self._queue
            or self._wheel[self.now & WHEEL_MASK]
        )

    # ------------------------------------------------------------------ registry
    @property
    def processes(self) -> List[Process]:
        """All processes ever registered with the engine.

        Returns the live internal list (treat it as read-only); monitoring
        code polling this property no longer pays an O(n) tuple copy per
        access.  For progress accounting use :attr:`live_process_count` /
        :attr:`finished_process_count`, which are O(1).
        """
        return self._processes

    @property
    def live_process_count(self) -> int:
        """Number of registered processes that have not finished."""
        return self._live_processes

    @property
    def finished_process_count(self) -> int:
        """Number of registered processes that have run to completion."""
        return len(self._processes) - self._live_processes

    # ------------------------------------------------------------------ run loop
    def run(self, until: Optional[int] = None) -> int:
        """Run until the event queues drain (or until ``until`` cycles).

        Returns the final simulation time.  Raises :class:`DeadlockError` if
        the queues drain while registered processes are still unfinished,
        which indicates a lost wake-up or a dependence cycle in the workload.
        Calling ``run`` again after an ``until``-bounded return resumes the
        simulation exactly where it stopped.
        """
        queue = self._queue
        ready = self._ready
        popleft = ready.popleft
        wheel = self._wheel
        times = self._bucket_times
        now = self.now
        bucket = wheel[now & WHEEL_MASK]
        while True:
            # ---- drain the current cycle: bucket entries first, then the
            # zero-delay ready entries.  No per-event merge check is needed:
            # a cycle's bucket cannot grow while the cycle runs (timed
            # yields target strictly later cycles; same-cycle schedule()
            # appends go to the ready deque), and every bucket entry was
            # queued in an earlier cycle, so it precedes — in the global
            # (time, seq) order — any ready entry created now.  Both
            # containers are seq-sorted by construction.
            if bucket:
                for _seq, target, value in bucket:
                    target.resume(value)
                bucket.clear()
            while ready:
                entry = popleft()
                entry[1].resume(entry[2])

            # ---- advance the clock to the next event time.  Bucket times
            # are always nearer than the far-future heap (its entries are
            # at least WHEEL_SPAN cycles out by invariant).
            if times:
                time = times[0]
            elif queue:
                time = queue[0][0]
            else:
                break
            if until is not None and time > until:
                # Stop the clock at the bound, but keep the heap/wheel
                # invariant so a later run() call resumes exactly here.
                self.now = until
                horizon = until + WHEEL_SPAN
                while queue and queue[0][0] < horizon:
                    entry = heappop(queue)
                    etime = entry[0]
                    slot = wheel[etime & WHEEL_MASK]
                    if not slot:
                        heappush(times, etime)
                    slot.append((entry[1], entry[2], entry[3]))
                return until
            if times:
                heappop(times)
            self.now = now = time

            # ---- migrate far-future events that entered the new window.
            # Heap pops come out in (time, seq) order, and any later direct
            # append to the same bucket carries a larger seq, so buckets
            # stay seq-sorted without ever sorting.
            horizon = now + WHEEL_SPAN
            while queue and queue[0][0] < horizon:
                entry = heappop(queue)
                etime = entry[0]
                slot = wheel[etime & WHEEL_MASK]
                if not slot and etime != now:
                    heappush(times, etime)
                slot.append((entry[1], entry[2], entry[3]))
            bucket = wheel[now & WHEEL_MASK]
        if self._live_processes > 0:
            blocked = [p.name for p in self._processes if not p.finished]
            raise DeadlockError(
                "simulation deadlocked: no pending events but "
                f"{self._live_processes} processes still blocked: {blocked[:8]}"
            )
        return self.now

    def run_all(self, max_cycles: Optional[int] = None) -> int:
        """Run to completion, optionally enforcing a cycle budget."""
        final = self.run(until=max_cycles)
        if max_cycles is not None and self._has_pending_events():
            raise SimulationError(
                f"simulation exceeded the cycle budget of {max_cycles} cycles"
            )
        return final
