"""Reproduction of "Architectural Support for Task Dependence Management with
Flexible Software Scheduling" (TDM, HPCA 2018).

The library contains, as importable subpackages:

* :mod:`repro.core` — the Dependence Management Unit (DMU) hardware model,
* :mod:`repro.sim` — the discrete-event multi-core simulation substrate,
* :mod:`repro.runtime` — the software / TDM / Carbon / Task-Superscalar
  runtime systems,
* :mod:`repro.schedulers` — the five software scheduling policies,
* :mod:`repro.workloads` — the nine benchmark task-graph generators,
* :mod:`repro.power` — power / energy / EDP models,
* :mod:`repro.experiments` — one harness per table and figure of the paper,
* :mod:`repro.analysis` — metrics, graph analysis and execution validation.

Quickstart::

    from repro import default_paper_config, run_simulation
    from repro.workloads import create_workload

    program = create_workload("cholesky", scale=0.25).build_program()
    sw = run_simulation(program, default_paper_config(runtime="software"))
    tdm = run_simulation(program, default_paper_config(runtime="tdm", scheduler="locality"))
    print("speedup:", tdm.speedup_over(sw))
"""

from .config import (
    ChipConfig,
    CoreConfig,
    CostModelConfig,
    DMUConfig,
    LocalityConfig,
    SimulationConfig,
    default_paper_config,
)
from .errors import (
    ConfigurationError,
    DMUError,
    DMUProtocolError,
    DMUStructureFullError,
    DeadlockError,
    InvalidProgramError,
    ReproError,
    SimulationError,
    ValidationError,
)
from .core.dmu import DependenceManagementUnit
from .core.storage import DMUStorageModel, TaskSuperscalarStorageModel
from .runtime.task import (
    AccessMode,
    DependenceSpec,
    TaskDefinition,
    TaskProgram,
    TaskRegion,
    single_region_program,
)
from .sim.machine import Machine, SimulationResult, run_simulation
from .sim.timeline import Phase

__version__ = "1.0.0"

__all__ = [
    "ChipConfig",
    "CoreConfig",
    "CostModelConfig",
    "DMUConfig",
    "LocalityConfig",
    "SimulationConfig",
    "default_paper_config",
    "ReproError",
    "ConfigurationError",
    "DMUError",
    "DMUProtocolError",
    "DMUStructureFullError",
    "DeadlockError",
    "InvalidProgramError",
    "SimulationError",
    "ValidationError",
    "DependenceManagementUnit",
    "DMUStorageModel",
    "TaskSuperscalarStorageModel",
    "AccessMode",
    "DependenceSpec",
    "TaskDefinition",
    "TaskProgram",
    "TaskRegion",
    "single_region_program",
    "Machine",
    "SimulationResult",
    "run_simulation",
    "Phase",
    "__version__",
]
