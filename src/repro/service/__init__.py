"""Long-running campaign results daemon (``tdm-repro serve``).

A stdlib-only asyncio HTTP/JSON service that keeps one
:class:`~repro.experiments.cache.ResultCache` and one built-``TaskProgram``
cache open for its whole lifetime, so repeated figure renders are served
from memory instead of paying a cold CLI process per request
(``docs/architecture.md`` has the full protocol).

* :class:`~repro.service.server.ResultsService` — the daemon: request
  routing, per-parameter :class:`~repro.experiments.campaign.CampaignEngine`
  pool, bounded ``ProcessPoolExecutor`` simulation offload.
* :class:`~repro.service.singleflight.SingleFlight` — coalesces concurrent
  identical work by canonical run key (N clients, one simulation).
* :class:`~repro.service.jobs.JobTable` — per-request progress records in
  the ``ShardManifest`` vocabulary (``GET /jobs/<id>``).
* :mod:`~repro.service.schemas` — JSON request validation and the
  canonical-key-set ETag derivation.
"""

from .jobs import JobTable
from .schemas import RenderRequest, etag_for
from .server import ResultsService, serve
from .singleflight import SingleFlight

__all__ = [
    "JobTable",
    "RenderRequest",
    "ResultsService",
    "SingleFlight",
    "etag_for",
    "serve",
]
