"""JSON request validation and ETag derivation for the results daemon.

The wire format is deliberately tiny: a render request is one flat JSON
object of knobs, every knob optional, unknown knobs rejected (a typoed
``"scales"`` should fail loudly, not silently render the default).  The
ETag digests the *identity* of the response — experiment, normalized
render parameters and the resolved canonical key set — not its bytes, so
revalidation (``If-None-Match`` → 304) needs no simulation and no render.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..config import DMU_BACKENDS
from ..errors import ExperimentError

#: Response body formats ``POST /figures/<name>`` can produce.
RENDER_FORMATS = ("md", "csv")

#: Content types per render format.
CONTENT_TYPES = {"md": "text/markdown; charset=utf-8", "csv": "text/csv; charset=utf-8"}

_KNOWN_FIELDS = frozenset(
    {"scale", "seed", "benchmarks", "schedulers", "backend", "format"}
)


@dataclass(frozen=True)
class RenderRequest:
    """A validated ``POST /figures/<name>`` body."""

    scale: float = 1.0
    seed: int = 0
    benchmarks: Optional[List[str]] = None
    #: Scheduler subset, forwarded to experiments that sweep schedulers
    #: (e.g. ``figure_12``); rejected by experiments that do not.
    schedulers: Optional[List[str]] = None
    #: DMU storage backend. Never changes bytes — excluded from the ETag,
    #: exactly as canonical run keys exclude it.
    backend: Optional[str] = None
    format: str = "md"

    def plan_kwargs(self) -> Dict[str, object]:
        """Extra keyword arguments for ``plan``/``run_experiment``."""
        return {"schedulers": list(self.schedulers)} if self.schedulers is not None else {}


def _string_list(value: object, name: str) -> List[str]:
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(item, str) for item in value
    ):
        raise ExperimentError(f"{name!r} must be a list of strings")
    return list(value)


def parse_render_request(body: bytes) -> RenderRequest:
    """Parse and validate a render-request body (empty body = defaults)."""
    if not body:
        return RenderRequest()
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ExperimentError(f"request body is not valid JSON: {error}") from error
    if not isinstance(data, dict):
        raise ExperimentError("request body must be a JSON object")
    unknown = sorted(set(data) - _KNOWN_FIELDS)
    if unknown:
        raise ExperimentError(
            f"unknown request field(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(_KNOWN_FIELDS))}"
        )
    scale = data.get("scale", 1.0)
    if not isinstance(scale, (int, float)) or isinstance(scale, bool) or not (
        0.0 < float(scale) <= 1.0
    ):
        raise ExperimentError(f"'scale' must be a number in (0, 1], got {scale!r}")
    seed = data.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ExperimentError(f"'seed' must be an integer, got {seed!r}")
    benchmarks = data.get("benchmarks")
    if benchmarks is not None:
        benchmarks = _string_list(benchmarks, "benchmarks")
    schedulers = data.get("schedulers")
    if schedulers is not None:
        schedulers = _string_list(schedulers, "schedulers")
    backend = data.get("backend")
    if backend is not None and backend not in DMU_BACKENDS:
        raise ExperimentError(
            f"'backend' must be one of {', '.join(DMU_BACKENDS)}, got {backend!r}"
        )
    render_format = data.get("format", "md")
    if render_format not in RENDER_FORMATS:
        raise ExperimentError(
            f"'format' must be one of {', '.join(RENDER_FORMATS)}, got {render_format!r}"
        )
    return RenderRequest(
        scale=float(scale),
        seed=seed,
        benchmarks=benchmarks,
        schedulers=schedulers,
        backend=backend,
        format=render_format,
    )


def etag_for(experiment: str, request: RenderRequest, keys: Sequence[str]) -> str:
    """The strong ETag of one render: a digest of its deterministic identity.

    Covers the canonical experiment name, every output-shaping knob
    (``scale``/``seed``/``benchmarks``/``schedulers``/``format`` — order
    matters for row order, so lists are digested as given), and the sorted
    canonical key set the render resolves to.  The DMU ``backend`` is
    deliberately absent: backends never change result bytes, exactly as
    they are excluded from canonical run keys (``docs/determinism.md``).
    """
    material = json.dumps(
        {
            "experiment": experiment,
            "scale": repr(request.scale),
            "seed": request.seed,
            "benchmarks": request.benchmarks,
            "schedulers": request.schedulers,
            "format": request.format,
            "keys": sorted(keys),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return '"' + hashlib.sha256(material.encode("utf-8")).hexdigest() + '"'


def etag_matches(if_none_match: Optional[str], etag: str) -> bool:
    """RFC 7232 ``If-None-Match`` comparison (weak-insensitive, ``*`` aware)."""
    if if_none_match is None:
        return False
    if if_none_match.strip() == "*":
        return True
    candidates = [value.strip() for value in if_none_match.split(",")]
    stripped = {value[2:] if value.startswith("W/") else value for value in candidates}
    return etag in stripped
