"""Per-request progress records for the results daemon (``GET /jobs/<id>``).

A job is the service-side analogue of a shard manifest: it reuses the
:class:`~repro.experiments.shard.ShardManifest` vocabulary — ``keys`` /
``attempted`` / ``cached_hits`` / ``simulated`` / ``failures`` /
``wall_time_s`` — so campaign tooling that already parses manifests can
read daemon job records without a second schema.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Job lifecycle states, in order.
JOB_STATUSES = ("running", "done", "failed")


@dataclass
class JobRecord:
    """What one render request attempted and how it went (JSON-safe)."""

    id: str
    experiment: str
    scale: float
    seed: int
    benchmarks: Optional[List[str]]
    keys: List[str] = field(default_factory=list)
    cached_hits: int = 0
    simulated: int = 0
    failures: Dict[str, Dict[str, object]] = field(default_factory=dict)
    wall_time_s: float = 0.0
    status: str = "running"
    etag: Optional[str] = None
    _started: float = field(default_factory=time.perf_counter, repr=False)

    @property
    def attempted(self) -> int:
        return len(self.keys)

    def finish(self, status: str = "done", etag: Optional[str] = None) -> None:
        assert status in JOB_STATUSES
        self.status = status
        self.etag = etag
        self.wall_time_s = time.perf_counter() - self._started

    def to_dict(self) -> Dict[str, object]:
        return {
            "id": self.id,
            "experiment": self.experiment,
            "scale": self.scale,
            "seed": self.seed,
            "benchmarks": list(self.benchmarks) if self.benchmarks is not None else None,
            "status": self.status,
            "attempted": self.attempted,
            "keys": list(self.keys),
            "cached_hits": self.cached_hits,
            "simulated": self.simulated,
            "failures": {key: dict(value) for key, value in sorted(self.failures.items())},
            "wall_time_s": self.wall_time_s,
            "etag": self.etag,
        }

    def summary(self) -> str:
        """One log line per request — the CI smoke greps ``simulated=N``."""
        return (
            f"job={self.id} experiment={self.experiment} status={self.status} "
            f"keys={self.attempted} cached={self.cached_hits} "
            f"simulated={self.simulated} failures={len(self.failures)} "
            f"wall={self.wall_time_s:.2f}s"
        )


class JobTable:
    """Bounded in-memory registry of job records, newest kept."""

    def __init__(self, limit: int = 256) -> None:
        self._jobs: Dict[str, JobRecord] = {}
        self._ids = itertools.count(1)
        self.limit = limit

    def __len__(self) -> int:
        return len(self._jobs)

    def create(
        self,
        experiment: str,
        scale: float,
        seed: int,
        benchmarks: Optional[List[str]],
        keys: List[str],
    ) -> JobRecord:
        job = JobRecord(
            id=f"job-{next(self._ids)}",
            experiment=experiment,
            scale=scale,
            seed=seed,
            benchmarks=benchmarks,
            keys=keys,
        )
        self._jobs[job.id] = job
        # Evict the oldest finished records beyond the budget (insertion
        # order is creation order; running jobs are never evicted).
        excess = len(self._jobs) - self.limit
        if excess > 0:
            for job_id in [
                existing
                for existing, record in self._jobs.items()
                if record.status != "running"
            ][:excess]:
                del self._jobs[job_id]
        return job

    def get(self, job_id: str) -> Optional[JobRecord]:
        return self._jobs.get(job_id)
