"""The campaign results daemon: a stdlib-only asyncio HTTP/JSON service.

``tdm-repro serve`` (or ``scripts/run_server.py``) starts one
:class:`ResultsService`.  The service owns, for its whole lifetime:

* one :class:`~repro.experiments.cache.ResultCache` — every request's
  engine reads and writes the same on-disk store;
* one built-``TaskProgram`` cache — scheduler/runtime sweeps across
  *requests* reuse the same immutable programs;
* a bounded pool of :class:`~repro.experiments.campaign.CampaignEngine`
  instances keyed by ``(scale, seed, backend)`` — the in-memory memo of a
  warm parameter set;
* a bounded ``ProcessPoolExecutor`` — simulations run in worker processes
  (the engine's own picklable ``_simulate_entry`` body), so the event loop
  never blocks on a simulation;
* a :class:`~repro.service.singleflight.SingleFlight` group keyed by
  canonical run key — N concurrent identical requests cost one simulation
  per key.

Endpoints::

    GET  /experiments      registry listing (experiment_catalog)
    POST /figures/<name>   render; JSON body of knobs; CSV/Markdown reply
                           with a canonical-key-set ETag (If-None-Match
                           revalidation answers 304 with zero simulation)
    GET  /jobs/<id>        progress record in the ShardManifest vocabulary
    GET  /healthz          liveness + cache/engine/flight counters
"""

from __future__ import annotations

import asyncio
import pathlib
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, TextIO, Tuple, Union
import json

from ..errors import ExperimentError
from ..reliability.faults import maybe_fault
from ..experiments.cache import ResultCache
from ..experiments.campaign import (
    _ERROR_MARKER,
    _simulate_entry,
    CampaignEngine,
    CampaignRunError,
    ResolvedRun,
)
from ..experiments.common import SimulationRunner
from ..experiments.registry import (
    canonical_name,
    experiment_catalog,
    plan_function,
    resolve_plan,
    run_experiment,
)
from .jobs import JobTable
from .schemas import (
    CONTENT_TYPES,
    RenderRequest,
    etag_for,
    etag_matches,
    parse_render_request,
)
from .singleflight import SingleFlight

#: Largest accepted request body; render requests are a handful of knobs.
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Cap on request header lines; real clients send a handful.
MAX_HEADER_LINES = 100


class _HttpError(Exception):
    """An error with a definite HTTP status, rendered as a JSON body."""

    def __init__(self, status: int, message: str,
                 headers: Optional[Dict[str, str]] = None) -> None:
        super().__init__(message)
        self.status = status
        self.headers = dict(headers or {})


class ResultsService:
    """The daemon: engine pool, simulation offload, request handlers."""

    #: Engines kept warm; beyond this the oldest parameter set is dropped
    #: (its results stay in the shared disk cache — only the memo goes).
    ENGINE_LIMIT = 8

    #: How long a poison key's failure is served from cache before a fresh
    #: simulation attempt is allowed (negative-TTL caching).
    DEFAULT_FAILURE_TTL_S = 30.0

    #: Seconds the graceful shutdown waits for in-flight requests.
    DRAIN_TIMEOUT_S = 30.0

    def __init__(
        self,
        cache_dir: Optional[Union[str, pathlib.Path]] = None,
        workers: int = 2,
        verbose: bool = False,
        log: TextIO = sys.stdout,
        request_timeout_s: Optional[float] = None,
        queue_budget: int = 32,
        failure_ttl_s: float = DEFAULT_FAILURE_TTL_S,
    ) -> None:
        if workers < 1:
            raise ExperimentError(f"workers must be >= 1, got {workers}")
        if request_timeout_s is not None and request_timeout_s <= 0:
            request_timeout_s = None
        if queue_budget < 0:
            raise ExperimentError(f"queue_budget must be >= 0, got {queue_budget}")
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.workers = workers
        self.verbose = verbose
        self._log_stream = log
        #: Per-request render deadline (None = unbounded): a render that
        #: cannot finish in time answers 503 + Retry-After while its
        #: simulations keep running in the pool and land in the cache, so
        #: the client's retry is a warm hit.
        self.request_timeout_s = request_timeout_s
        #: Maximum simulations *queued behind* the pool (in-flight beyond
        #: ``workers``) before new renders are refused with 503.
        self.queue_budget = queue_budget
        self.failure_ttl_s = failure_ttl_s
        #: Built task programs shared by every engine (keys embed scale/seed).
        self.programs: Dict[tuple, object] = {}
        self.engines: Dict[tuple, CampaignEngine] = {}
        self.flights = SingleFlight()
        self.jobs = JobTable()
        self.executor: Optional[ProcessPoolExecutor] = None
        self.started_at = time.time()
        #: Serializes render sections per engine (simulations stay parallel:
        #: the lock is only held around memo lookups and row assembly).
        self._render_locks: Dict[tuple, asyncio.Lock] = {}
        #: Negative-TTL failure cache: key -> (monotonic expiry, message).
        #: A poison key (deterministic simulation failure) answers from here
        #: until the TTL lapses instead of re-simulating in a hot loop.
        self._failures: Dict[str, Tuple[float, str]] = {}
        self.failure_cache_hits = 0
        #: Simulations currently submitted to the executor.
        self.inflight_sims = 0
        #: Renders refused because the simulation queue exceeded budget.
        self.rejected_busy = 0
        #: Renders that hit their per-request deadline.
        self.deadline_expired = 0
        #: Open HTTP connections being handled (drained on shutdown).
        self._active_requests = 0
        self.draining = False

    # ------------------------------------------------------------------ plumbing
    def log(self, message: str) -> None:
        print(f"[serve] {message}", file=self._log_stream, flush=True)

    def engine_for(self, request: RenderRequest) -> CampaignEngine:
        """The (warm or new) engine of one parameter set, sharing the caches."""
        key = (request.scale, request.seed, request.backend)
        engine = self.engines.get(key)
        if engine is None:
            engine = CampaignEngine(
                scale=request.scale,
                seed=request.seed,
                backend=request.backend,
                disk_cache=self.cache,
                program_cache=self.programs,
            )
            if len(self.engines) >= self.ENGINE_LIMIT:
                evicted = next(iter(self.engines))
                del self.engines[evicted]
                self._render_locks.pop(evicted, None)
            self.engines[key] = engine
            self._render_locks[key] = asyncio.Lock()
        return engine

    def _render_lock(self, request: RenderRequest) -> asyncio.Lock:
        return self._render_locks[(request.scale, request.seed, request.backend)]

    async def _simulate(self, engine: CampaignEngine, resolved: ResolvedRun) -> None:
        """Simulate one resolved run in the worker pool and commit it.

        Coalesced by canonical key across *all* concurrent requests and
        engines: joiners of a flight started by another engine re-probe the
        shared disk cache once the flight lands.
        """

        self._check_failure_cache(resolved.key)

        async def flight() -> None:
            if engine.cached(resolved) is not None:
                # A previous flight for this key landed between our caller's
                # cache probe and takeoff — nothing left to simulate.
                return
            loop = asyncio.get_running_loop()
            self.inflight_sims += 1
            try:
                key, result_dict, seconds = await loop.run_in_executor(
                    self.executor, _simulate_entry, engine.payload_for(resolved)
                )
            finally:
                self.inflight_sims -= 1
            marker = result_dict.get(_ERROR_MARKER)
            if marker is not None:
                error = CampaignRunError(
                    key,
                    marker["params"],
                    marker["error_type"],
                    marker["error_message"],
                    marker["traceback"],
                )
                # Negative-TTL cache: until the TTL lapses, repeat requests
                # for this poison key are answered without resimulating.
                self._failures[key] = (
                    time.monotonic() + self.failure_ttl_s, str(error)
                )
                raise error
            engine.commit_serialized(key, result_dict, seconds)

        await self.flights.run(resolved.key, flight)
        if engine.cached(resolved) is None:
            # The flight was another engine's (same key, different backend):
            # it committed to the shared disk cache; adopt the result.
            raise _HttpError(
                500, f"simulation {resolved.key[:12]}… landed but is not cached"
            )

    def _check_failure_cache(self, key: str) -> None:
        """Refuse (503 + Retry-After) keys with a live cached failure."""
        entry = self._failures.get(key)
        if entry is None:
            return
        expiry, message = entry
        remaining = expiry - time.monotonic()
        if remaining <= 0:
            del self._failures[key]
            return
        self.failure_cache_hits += 1
        raise _HttpError(
            503,
            f"cached failure for {key[:12]}… (retry in {remaining:.0f}s): {message}",
            headers={"Retry-After": str(max(1, int(remaining + 0.999)))},
        )

    def _prune_failure_cache(self) -> None:
        now = time.monotonic()
        for key in [k for k, (expiry, _) in self._failures.items() if expiry <= now]:
            del self._failures[key]

    def _check_queue_budget(self, new_sims: int) -> None:
        """Refuse renders that would overflow the simulation queue budget."""
        projected = self.inflight_sims + new_sims
        if projected <= self.workers + self.queue_budget:
            return
        self.rejected_busy += 1
        # Rough drain estimate: a full queue at ~1s per simulation slot.
        backlog = max(1, (projected - self.workers) // max(1, self.workers))
        raise _HttpError(
            503,
            f"simulation queue over budget ({self.inflight_sims} in flight, "
            f"{new_sims} requested, budget {self.queue_budget}); retry later",
            headers={"Retry-After": str(min(60, backlog))},
        )

    # ------------------------------------------------------------------ handlers
    async def handle_experiments(self) -> Tuple[int, bytes, str, Dict[str, str]]:
        body = _json_bytes({"experiments": experiment_catalog()})
        return 200, body, "application/json", {}

    async def handle_healthz(self) -> Tuple[int, bytes, str, Dict[str, str]]:
        self._prune_failure_cache()
        degraded = []
        if self.cache is not None and self.cache.quarantined:
            degraded.append(f"{self.cache.quarantined} cache entries quarantined")
        if self._failures:
            degraded.append(f"{len(self._failures)} keys in failure cache")
        if self.inflight_sims > self.workers + self.queue_budget:
            degraded.append("simulation queue over budget")
        if self.draining:
            degraded.append("draining for shutdown")
        body = _json_bytes(
            {
                "status": "degraded" if degraded else "ok",
                "degraded_reasons": degraded,
                "uptime_s": round(time.time() - self.started_at, 3),
                "engines": len(self.engines),
                "jobs": len(self.jobs),
                "flights": {
                    "in_flight": len(self.flights),
                    "started": self.flights.started,
                    "joined": self.flights.joined,
                },
                "reliability": {
                    "inflight_sims": self.inflight_sims,
                    "queue_budget": self.queue_budget,
                    "rejected_busy": self.rejected_busy,
                    "deadline_expired": self.deadline_expired,
                    "failure_cache": len(self._failures),
                    "failure_cache_hits": self.failure_cache_hits,
                    "quarantined": self.cache.quarantined if self.cache is not None else 0,
                },
                "cache_dir": str(self.cache.directory) if self.cache is not None else None,
            }
        )
        return 200, body, "application/json", {}

    async def handle_job(self, job_id: str) -> Tuple[int, bytes, str, Dict[str, str]]:
        job = self.jobs.get(job_id)
        if job is None:
            raise _HttpError(404, f"unknown job {job_id!r}")
        return 200, _json_bytes(job.to_dict()), "application/json", {}

    async def handle_render(
        self, name: str, body: bytes, if_none_match: Optional[str]
    ) -> Tuple[int, bytes, str, Dict[str, str]]:
        maybe_fault("serve", key=None)
        try:
            experiment = canonical_name(name)
        except ExperimentError as error:
            raise _HttpError(404, str(error)) from error
        try:
            request = parse_render_request(body)
        except ExperimentError as error:
            raise _HttpError(400, str(error)) from error

        engine = self.engine_for(request)
        runner = SimulationRunner(engine=engine)
        try:
            plan = plan_function(experiment)
            resolved: List[ResolvedRun] = (
                resolve_plan(
                    experiment, runner,
                    benchmarks=request.benchmarks, **request.plan_kwargs(),
                )
                if plan is not None
                else []
            )
        except ExperimentError as error:
            raise _HttpError(400, str(error)) from error

        etag = etag_for(experiment, request, [item.key for item in resolved])
        if etag_matches(if_none_match, etag):
            # Revalidation is pure identity: no simulation, no render.
            self.log(f"revalidated experiment={experiment} etag={etag[1:13]}… 304")
            return 304, b"", CONTENT_TYPES[request.format], {"ETag": etag}

        # Degradation gates, before any work is admitted: a queue already
        # over budget refuses the render outright (503 + Retry-After).
        cold = sum(1 for item in resolved if engine.cached(item) is None)
        if cold:
            self._check_queue_budget(cold)

        job = self.jobs.create(
            experiment, request.scale, request.seed, request.benchmarks,
            [item.key for item in resolved],
        )
        try:
            payload = await asyncio.wait_for(
                self._render(engine, experiment, request, resolved, job),
                timeout=self.request_timeout_s,
            )
        except asyncio.TimeoutError as error:
            # The per-request deadline lapsed.  In-flight simulations are
            # *not* abandoned: single-flight shields them, they land in the
            # shared cache, and the client's retry renders warm.
            self.deadline_expired += 1
            job.finish("failed")
            self.log(job.summary())
            raise _HttpError(
                503,
                f"render deadline ({self.request_timeout_s:.0f}s) exceeded; "
                "simulations continue in the background — retry shortly",
                headers={"Retry-After": "2"},
            ) from error
        except CampaignRunError as error:
            job.failures[error.key] = error.to_dict()
            job.finish("failed")
            self.log(job.summary())
            raise _HttpError(500, str(error)) from error
        except _HttpError:
            job.finish("failed")
            self.log(job.summary())
            raise
        except ExperimentError as error:
            job.finish("failed")
            self.log(job.summary())
            raise _HttpError(400, str(error)) from error
        job.finish("done", etag=etag)
        self.log(job.summary())
        headers = {"ETag": etag, "X-Job-Id": job.id}
        return 200, payload, CONTENT_TYPES[request.format], headers

    async def _render(
        self,
        engine: CampaignEngine,
        experiment: str,
        request: RenderRequest,
        resolved: Sequence[ResolvedRun],
        job,
    ) -> bytes:
        """Simulate what is missing, then render from the warm engine."""
        missing = []
        for item in resolved:
            if engine.cached(item) is None:
                missing.append(item)
            else:
                job.cached_hits += 1
        if missing:
            await asyncio.gather(
                *(self._simulate(engine, item) for item in missing)
            )
        # Keys this request had to wait on a simulation for.  Single-flight
        # means concurrent identical requests each report the shared wait;
        # the engine's `simulations_run` counter stays the ground truth for
        # how many actually ran.
        job.simulated = len(missing)
        lock = self._render_lock(request)
        async with lock:
            # Every key is warm: the render is pure memo reads + row math,
            # so holding the per-engine lock here serializes only cheap
            # sections (concurrent different-engine renders still overlap).
            try:
                result = await asyncio.to_thread(
                    run_experiment,
                    experiment,
                    scale=request.scale,
                    benchmarks=request.benchmarks,
                    runner=SimulationRunner(engine=engine),
                    **request.plan_kwargs(),
                )
            except TypeError as error:
                # An option the harness does not take (e.g. schedulers on a
                # figure without a scheduler sweep) → caller error.
                raise _HttpError(400, f"unsupported option for {experiment}: {error}") from error
        text = result.to_csv() if request.format == "csv" else result.to_markdown()
        return text.encode("utf-8")

    # ------------------------------------------------------------------ HTTP
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._active_requests += 1
        try:
            await self._handle_connection(reader, writer)
        finally:
            self._active_requests -= 1

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            parsed = await _read_request(reader)
            if parsed is None:
                return
            method, target, headers, body = parsed
            status, payload, content_type, extra = await self._route(
                method, target, headers, body
            )
        except _HttpError as error:
            status, payload, content_type, extra = (
                error.status,
                _json_bytes({"error": str(error)}),
                "application/json",
                dict(error.headers),
            )
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        except Exception as error:  # noqa: BLE001 - daemon must not die per-request
            # Full context to the server log; a generic body to the client
            # (internal exception text is not part of the API surface).
            self.log(f"internal error: {type(error).__name__}: {error}")
            status, payload, content_type, extra = (
                500,
                _json_bytes({"error": "internal server error"}),
                "application/json",
                {},
            )
        try:
            _write_response(writer, status, payload, content_type, extra)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    async def _route(
        self, method: str, target: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, bytes, str, Dict[str, str]]:
        path = target.split("?", 1)[0]
        if path == "/healthz":
            _require(method, "GET")
            return await self.handle_healthz()
        if path == "/experiments":
            _require(method, "GET")
            return await self.handle_experiments()
        if path.startswith("/jobs/"):
            _require(method, "GET")
            return await self.handle_job(path[len("/jobs/"):])
        if path.startswith("/figures/"):
            _require(method, "POST")
            return await self.handle_render(
                path[len("/figures/"):], body, headers.get("if-none-match")
            )
        raise _HttpError(404, f"no route for {path!r}")

    # ------------------------------------------------------------------ lifecycle
    async def serve(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        ready: Optional[asyncio.Event] = None,
        bound: Optional[list] = None,
    ) -> None:
        """Run until cancelled.  ``ready``/``bound`` exist for test harnesses:
        ``bound`` receives the actual ``(host, port)`` (``port=0`` binds an
        ephemeral one) before ``ready`` is set."""
        self.executor = ProcessPoolExecutor(max_workers=self.workers)
        server = await asyncio.start_server(self.handle_connection, host, port)
        try:
            address = server.sockets[0].getsockname()[:2]
            if bound is not None:
                bound.append(address)
            self.log(
                f"listening on http://{address[0]}:{address[1]} "
                f"(cache={self.cache.directory if self.cache is not None else 'memory-only'}, "
                f"workers={self.workers})"
            )
            if ready is not None:
                ready.set()
            async with server:
                try:
                    await server.serve_forever()
                except asyncio.CancelledError:
                    # Graceful drain: stop accepting, let in-flight requests
                    # finish (bounded), then tear the pool down.
                    self.draining = True
                    server.close()
                    deadline = time.monotonic() + self.DRAIN_TIMEOUT_S
                    while self._active_requests and time.monotonic() < deadline:
                        await asyncio.sleep(0.05)
                    if self._active_requests:
                        self.log(
                            f"drain timeout: {self._active_requests} "
                            "requests still in flight"
                        )
                    raise
        finally:
            self.executor.shutdown(wait=False, cancel_futures=True)
            self.executor = None


def _require(method: str, expected: str) -> None:
    if method != expected:
        raise _HttpError(405, f"method {method} not allowed (use {expected})")


def _json_bytes(data: Dict[str, object]) -> bytes:
    return (json.dumps(data, indent=1, sort_keys=True) + "\n").encode("utf-8")


async def _readline(reader: asyncio.StreamReader, what: str) -> bytes:
    """One header line, with StreamReader overruns mapped to clean 400s.

    An over-long line (beyond the reader's 64 KiB limit) raises
    ``ValueError``/``LimitOverrunError`` from ``readline``; without this
    wrapper that surfaced as a traceback-shaped 500.
    """
    try:
        return await reader.readline()
    except (ValueError, asyncio.LimitOverrunError) as error:
        raise _HttpError(400, f"oversized {what}") from error


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    request_line = await _readline(reader, "request line")
    if not request_line:
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise _HttpError(400, "malformed request line")
    method, target = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    while True:
        line = await _readline(reader, "header line")
        if line in (b"\r\n", b"\n", b""):
            break
        if len(headers) >= MAX_HEADER_LINES:
            raise _HttpError(400, f"more than {MAX_HEADER_LINES} header lines")
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError as error:
        raise _HttpError(400, "malformed Content-Length") from error
    if length > MAX_BODY_BYTES:
        raise _HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    return method, target, headers, body


def _write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: bytes,
    content_type: str,
    extra: Dict[str, str],
) -> None:
    lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}"]
    headers = dict(extra)
    headers.setdefault("Connection", "close")
    if status != 304:
        headers.setdefault("Content-Type", content_type)
        headers.setdefault("Content-Length", str(len(payload)))
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    writer.write(head + (payload if status != 304 else b""))


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    cache_dir: Optional[Union[str, pathlib.Path]] = None,
    workers: int = 2,
    verbose: bool = False,
    request_timeout_s: Optional[float] = None,
    queue_budget: int = 32,
    failure_ttl_s: float = ResultsService.DEFAULT_FAILURE_TTL_S,
) -> int:
    """Blocking entry point shared by ``tdm-repro serve`` and run_server.py."""
    service = ResultsService(
        cache_dir=cache_dir,
        workers=workers,
        verbose=verbose,
        request_timeout_s=request_timeout_s,
        queue_budget=queue_budget,
        failure_ttl_s=failure_ttl_s,
    )
    try:
        asyncio.run(service.serve(host=host, port=port))
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        service.log("shutting down")
    return 0
