"""Single-flight coalescing of concurrent identical async work.

The results daemon dedupes simulation work by canonical run key: when N
clients concurrently request figures whose sweeps share a key, exactly one
simulation runs and every waiter receives its result.  The pattern is the
classic ``singleflight`` group (one in-flight task per key, joiners await
it) adapted to asyncio.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Dict, TypeVar

T = TypeVar("T")


class SingleFlight:
    """One in-flight task per key; concurrent callers share its outcome.

    ``run(key, thunk)`` starts ``thunk()`` only if no flight for ``key`` is
    already airborne, otherwise it joins the existing one.  Failures
    propagate to *every* waiter (each retries independently on its next
    request — a failed flight is forgotten, not cached).  Waiters are
    shielded: one client disconnecting must not cancel the simulation the
    others are waiting on.
    """

    def __init__(self) -> None:
        self._flights: Dict[str, asyncio.Task] = {}
        #: Completed-flight counters, for tests and ``/healthz``.
        self.started = 0
        self.joined = 0

    def __len__(self) -> int:
        return len(self._flights)

    async def run(self, key: str, thunk: Callable[[], Awaitable[T]]) -> T:
        """Run ``thunk`` under ``key``, or join the flight already running it."""
        task = self._flights.get(key)
        if task is None:
            self.started += 1
            task = asyncio.ensure_future(thunk())
            self._flights[key] = task
            task.add_done_callback(lambda _done, _key=key: self._flights.pop(_key, None))
        else:
            self.joined += 1
        return await asyncio.shield(task)
